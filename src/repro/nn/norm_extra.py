"""Batch-independent normalization layers: LayerNorm and GroupNorm.

BatchNorm's statistics degrade at the very small batch sizes CPU-scale
experiments sometimes force; GroupNorm/LayerNorm are the standard
batch-size-robust alternatives and, like everything in ``repro.nn``,
are composites of twice-differentiable primitives so HERO's double
backprop flows through them.
"""

import numpy as np

from .module import Module, Parameter


class LayerNorm(Module):
    """Normalize over the trailing ``normalized_shape`` dimensions.

    ``y = (x - mean) / sqrt(var + eps) * weight + bias`` with statistics
    computed per sample over the normalized dimensions.
    """

    def __init__(self, normalized_shape, eps=1e-5, affine=True):
        super().__init__()
        if isinstance(normalized_shape, int):
            normalized_shape = (normalized_shape,)
        self.normalized_shape = tuple(normalized_shape)
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(self.normalized_shape))
            self.bias = Parameter(np.zeros(self.normalized_shape))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x):
        ndim = len(self.normalized_shape)
        if tuple(x.shape[-ndim:]) != self.normalized_shape:
            raise ValueError(
                f"trailing dims {x.shape[-ndim:]} do not match "
                f"normalized_shape {self.normalized_shape}"
            )
        axes = tuple(range(x.ndim - ndim, x.ndim))
        mu = x.mean(axis=axes, keepdims=True)
        var = ((x - mu) * (x - mu)).mean(axis=axes, keepdims=True)
        x_hat = (x - mu) * (var + self.eps).pow(-0.5)
        if self.affine:
            x_hat = x_hat * self.weight + self.bias
        return x_hat

    def __repr__(self):
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"


class GroupNorm(Module):
    """Normalize NCHW activations within ``num_groups`` channel groups."""

    def __init__(self, num_groups, num_channels, eps=1e-5, affine=True):
        super().__init__()
        if num_channels % num_groups:
            raise ValueError(
                f"num_channels {num_channels} not divisible by groups {num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.affine = affine
        if affine:
            self.weight = Parameter(np.ones(num_channels))
            self.bias = Parameter(np.zeros(num_channels))
        else:
            self.weight = None
            self.bias = None

    def forward(self, x):
        if x.ndim != 4:
            raise ValueError(f"GroupNorm expects NCHW input, got {x.ndim}-D")
        n, c, h, w = x.shape
        if c != self.num_channels:
            raise ValueError(f"expected {self.num_channels} channels, got {c}")
        g = self.num_groups
        grouped = x.reshape(n, g, c // g, h, w)
        mu = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = ((grouped - mu) * (grouped - mu)).mean(axis=(2, 3, 4), keepdims=True)
        x_hat = ((grouped - mu) * (var + self.eps).pow(-0.5)).reshape(n, c, h, w)
        if self.affine:
            shape = (1, c, 1, 1)
            x_hat = x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)
        return x_hat

    def __repr__(self):
        return (
            f"GroupNorm({self.num_groups}, {self.num_channels}, eps={self.eps})"
        )
