"""Smooth activations: GELU, SiLU, Softplus, ELU.

Smooth activations matter specifically for Hessian work: ReLU networks
have zero second derivative almost everywhere *within* a linear region,
so curvature concentrates at kink crossings; GELU/SiLU/Softplus give
HERO's penalty a dense, well-defined Hessian.  All are composites of
``exp``/``tanh``/``sigmoid`` primitives, hence arbitrarily
differentiable.
"""

import math

from .module import Module


class GELU(Module):
    """Gaussian Error Linear Unit (tanh approximation, as in BERT/GPT).

    ``0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))``
    """

    _COEF = math.sqrt(2.0 / math.pi)

    def forward(self, x):
        inner = (x + 0.044715 * (x * x * x)) * self._COEF
        return 0.5 * x * (1.0 + inner.tanh())


class SiLU(Module):
    """Sigmoid-weighted linear unit (swish): ``x * sigmoid(x)``."""

    def forward(self, x):
        return x * x.sigmoid()


class Softplus(Module):
    """Smooth ReLU: ``log(1 + exp(beta x)) / beta`` (numerically stable)."""

    def __init__(self, beta=1.0):
        super().__init__()
        if beta <= 0:
            raise ValueError(f"beta must be positive, got {beta}")
        self.beta = float(beta)

    def forward(self, x):
        # softplus(z) = max(z, 0) + log(1 + exp(-|z|)); the relu/abs
        # masks are locally constant so differentiability is preserved
        # away from 0, and the exp argument is always non-positive.
        z = x * self.beta
        return (z.relu() + (1.0 + (-z.abs()).exp()).log()) * (1.0 / self.beta)

    def __repr__(self):
        return f"Softplus(beta={self.beta})"


class ELU(Module):
    """Exponential linear unit: ``x`` for ``x>0``, ``alpha (e^x - 1)`` else."""

    def __init__(self, alpha=1.0):
        super().__init__()
        self.alpha = float(alpha)

    def forward(self, x):
        from ..tensor import where

        negative = self.alpha * ((-x.abs()).exp() - 1.0)
        return where(x.data > 0, x, negative)

    def __repr__(self):
        return f"ELU(alpha={self.alpha})"
