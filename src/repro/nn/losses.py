"""Loss functions.

``CrossEntropyLoss`` is the loss used throughout the paper's
experiments.  It is a composite of ``log_softmax`` and a differentiable
label gather, so HERO can differentiate *through its gradient*.
"""

import numpy as np

from ..tensor import Tensor, log_softmax
from .module import Module


def cross_entropy(logits, targets, label_smoothing=0.0, reduction="mean"):
    """Cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    Parameters
    ----------
    label_smoothing:
        Mix the one-hot target with the uniform distribution:
        ``(1 - s) * one_hot + s / C``.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"expected (N, C) logits, got shape {logits.shape}")
    n, c = logits.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} does not match N={n}")
    logp = log_softmax(logits, axis=1)
    flat_idx = np.arange(n) * c + targets
    nll = -logp.take_flat(flat_idx)  # (N,)
    if label_smoothing > 0.0:
        uniform = -logp.mean(axis=1)
        nll = (1.0 - label_smoothing) * nll + label_smoothing * uniform
    return _reduce(nll, reduction)


def mse_loss(prediction, target, reduction="mean"):
    """Mean squared error."""
    target = Tensor.as_tensor(target)
    diff = prediction - target
    return _reduce(diff * diff, reduction)


def _reduce(values, reduction):
    if reduction == "mean":
        return values.mean()
    if reduction == "sum":
        return values.sum()
    if reduction == "none":
        return values
    raise ValueError(f"unknown reduction {reduction!r}")


class CrossEntropyLoss(Module):
    """Module wrapper over :func:`cross_entropy`."""

    def __init__(self, label_smoothing=0.0, reduction="mean"):
        super().__init__()
        self.label_smoothing = label_smoothing
        self.reduction = reduction

    def forward(self, logits, targets):
        return cross_entropy(
            logits,
            targets,
            label_smoothing=self.label_smoothing,
            reduction=self.reduction,
        )

    def __repr__(self):
        return f"CrossEntropyLoss(label_smoothing={self.label_smoothing})"


class MSELoss(Module):
    """Module wrapper over :func:`mse_loss`."""

    def __init__(self, reduction="mean"):
        super().__init__()
        self.reduction = reduction

    def forward(self, prediction, target):
        return mse_loss(prediction, target, reduction=self.reduction)
