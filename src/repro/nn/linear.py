"""Fully-connected layer."""

import numpy as np

from ..tensor import Tensor, default_dtype
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output dimensionality.
    bias:
        Include an additive bias (default ``True``).
    rng:
        ``numpy.random.Generator`` used for initialization; a fresh
        default generator is used when omitted.
    """

    def __init__(self, in_features, out_features, bias=True, rng=None):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(np.empty((out_features, in_features), dtype=default_dtype()))
        init.kaiming_uniform_(self.weight, rng)
        if bias:
            self.bias = Parameter(np.empty(out_features, dtype=default_dtype()))
            init.linear_bias_(self.bias, rng, in_features)
        else:
            self.bias = None

    def forward(self, x):
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self):
        return (
            f"Linear(in_features={self.in_features}, "
            f"out_features={self.out_features}, bias={self.bias is not None})"
        )


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, x):
        return x.reshape(x.shape[0], -1)


def linear(x, weight, bias=None):
    """Functional affine map (used by tests)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


__all__ = ["Linear", "Flatten", "linear", "Tensor"]
