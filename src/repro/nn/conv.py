"""2-D convolution via im2col gather + (batched) matmul.

Expressing convolution as ``TakeFlat`` -> ``MatMul`` means every step of
the forward pass has a graph-valued backward rule, so convolutional
networks are twice differentiable — a hard requirement for HERO's
double backprop (Eq. 16) and the GRAD-L1 baseline.

Grouped convolution (including depthwise, ``groups == in_channels``,
as used by MobileNetV2) maps onto a single 3-D batched matmul over the
group axis — no Python-level loop over groups.
"""

from collections import OrderedDict

import numpy as np

from ..tensor import default_dtype
from . import init
from .module import Module, Parameter

# Bounded LRU for im2col gather indices.  Index construction is pure
# integer arithmetic but costs ~ O(N * OHW * C * KK) per call — several
# milliseconds for a CIFAR-sized batch — so a training loop that
# recomputed it every step would spend more time building indices than
# convolving.  The bound keeps pathological shape churn (e.g. sweeping
# image sizes in an eval harness) from growing the cache without limit;
# steady-state training uses a handful of entries and never evicts.
_INDEX_CACHE_MAX = 64
_INDEX_CACHE = OrderedDict()
_INDEX_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def im2col_cache_info():
    """Snapshot of the index-cache counters (hits/misses/evictions/size)."""
    info = dict(_INDEX_CACHE_STATS)
    info["size"] = len(_INDEX_CACHE)
    info["maxsize"] = _INDEX_CACHE_MAX
    return info


def im2col_cache_clear():
    """Drop all cached index arrays and reset the counters."""
    _INDEX_CACHE.clear()
    for key in _INDEX_CACHE_STATS:
        _INDEX_CACHE_STATS[key] = 0


def _pair(value):
    """Normalize an int-or-pair argument to a 2-tuple."""
    if isinstance(value, (tuple, list)):
        if len(value) != 2:
            raise ValueError(f"expected an int or a pair, got {value!r}")
        return (int(value[0]), int(value[1]))
    return (int(value), int(value))


def conv_output_size(size, kernel, stride, padding, dilation=1):
    """Spatial output size of a convolution along one dimension."""
    effective = dilation * (kernel - 1) + 1
    return (size + 2 * padding - effective) // stride + 1


def im2col_indices(in_shape, kernel, stride, dilation):
    """Flat gather indices turning a padded NCHW tensor into patches.

    Returns an int array of shape ``(N, OH*OW, C, KH*KW)`` whose entries
    index into the *flattened padded* input; gathering with it yields,
    for every output location, the receptive-field window of every
    channel.  Results are memoized in a bounded LRU — models reuse the
    same shapes every step, so steady-state training recomputes nothing
    (see :func:`im2col_cache_info`).
    """
    key = (in_shape, kernel, stride, dilation)
    cached = _INDEX_CACHE.get(key)
    if cached is not None:
        _INDEX_CACHE_STATS["hits"] += 1
        _INDEX_CACHE.move_to_end(key)
        return cached
    _INDEX_CACHE_STATS["misses"] += 1

    n, c, hp, wp = in_shape
    kh, kw = kernel
    sh, sw = stride
    dh, dw = dilation
    oh = conv_output_size(hp, kh, sh, 0, dh)
    ow = conv_output_size(wp, kw, sw, 0, dw)
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride} does not fit input {in_shape}"
        )

    out_rows = np.arange(oh * ow) // ow  # (OHW,)
    out_cols = np.arange(oh * ow) % ow
    ker_rows = np.arange(kh * kw) // kw  # (KK,)
    ker_cols = np.arange(kh * kw) % kw
    rows = out_rows[:, None] * sh + ker_rows[None, :] * dh  # (OHW, KK)
    cols = out_cols[:, None] * sw + ker_cols[None, :] * dw

    n_idx = np.arange(n)[:, None, None, None]
    c_idx = np.arange(c)[None, None, :, None]
    flat = ((n_idx * c + c_idx) * hp + rows[None, :, None, :]) * wp
    flat = flat + cols[None, :, None, :]
    result = (flat.astype(np.int64), oh, ow)
    _INDEX_CACHE[key] = result
    if len(_INDEX_CACHE) > _INDEX_CACHE_MAX:
        _INDEX_CACHE.popitem(last=False)
        _INDEX_CACHE_STATS["evictions"] += 1
    return result


def conv2d(x, weight, bias=None, stride=1, padding=0, dilation=1, groups=1):
    """Functional 2-D convolution (NCHW layout).

    ``weight`` has shape ``(out_channels, in_channels // groups, kh, kw)``.
    """
    stride = _pair(stride)
    padding = _pair(padding)
    dilation = _pair(dilation)
    n, c, _h, _w = x.shape
    oc, c_per_group, kh, kw = weight.shape
    if c != c_per_group * groups:
        raise ValueError(
            f"input channels {c} incompatible with weight {weight.shape} "
            f"and groups={groups}"
        )
    if oc % groups:
        raise ValueError(f"out_channels {oc} not divisible by groups {groups}")

    if padding != (0, 0):
        ph, pw = padding
        x = x.pad(((0, 0), (0, 0), (ph, ph), (pw, pw)))

    indices, oh, ow = im2col_indices(x.shape, (kh, kw), stride, dilation)
    patches = x.take_flat(indices)  # (N, OHW, C, KK)

    oc_per_group = oc // groups
    ohw = oh * ow
    cols = (
        patches.reshape(n, ohw, groups, c_per_group * kh * kw)
        .transpose((2, 0, 1, 3))
        .reshape(groups, n * ohw, c_per_group * kh * kw)
    )
    kernel = weight.reshape(groups, oc_per_group, c_per_group * kh * kw).transpose(
        (0, 2, 1)
    )
    out = cols @ kernel  # (G, N*OHW, OCg)
    out = (
        out.reshape(groups, n, oh, ow, oc_per_group)
        .transpose((1, 0, 4, 2, 3))
        .reshape(n, oc, oh, ow)
    )
    if bias is not None:
        out = out + bias.reshape(1, oc, 1, 1)
    return out


class Conv2d(Module):
    """2-D convolution layer over NCHW inputs.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts; ``out_channels`` must be divisible by ``groups``.
    kernel_size, stride, padding, dilation:
        Int or (h, w) pair, numpy/PyTorch semantics.
    groups:
        Channel groups; ``groups == in_channels`` gives a depthwise
        convolution (MobileNetV2's workhorse).
    bias:
        Include the additive per-channel bias.
    """

    def __init__(
        self,
        in_channels,
        out_channels,
        kernel_size,
        stride=1,
        padding=0,
        dilation=1,
        groups=1,
        bias=True,
        rng=None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        kh, kw = _pair(kernel_size)
        if in_channels % groups:
            raise ValueError(
                f"in_channels {in_channels} not divisible by groups {groups}"
            )
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = _pair(stride)
        self.padding = _pair(padding)
        self.dilation = _pair(dilation)
        self.groups = groups
        self.weight = Parameter(
            np.empty((out_channels, in_channels // groups, kh, kw), dtype=default_dtype())
        )
        init.kaiming_normal_(self.weight, rng)
        if bias:
            fan_in = (in_channels // groups) * kh * kw
            self.bias = Parameter(np.empty(out_channels, dtype=default_dtype()))
            init.linear_bias_(self.bias, rng, fan_in)
        else:
            self.bias = None

    def forward(self, x):
        return conv2d(
            x,
            self.weight,
            bias=self.bias,
            stride=self.stride,
            padding=self.padding,
            dilation=self.dilation,
            groups=self.groups,
        )

    def __repr__(self):
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, groups={self.groups}, "
            f"bias={self.bias is not None})"
        )
