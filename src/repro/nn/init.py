"""Weight initialization schemes (Kaiming / Xavier / constant).

All initializers operate in-place on a tensor's numpy buffer and take an
explicit ``numpy.random.Generator`` so experiments stay deterministic.
Draws happen in float64 and are cast to the tensor's dtype, so the
random stream (and hence the init, up to rounding) is identical under
every engine precision policy.
"""

import math

import numpy as np


def _fan_in_out(shape):
    """Compute (fan_in, fan_out) for linear or convolutional weights."""
    if len(shape) == 2:  # Linear: (out, in)
        fan_out, fan_in = shape
        return fan_in, fan_out
    if len(shape) == 4:  # Conv2d: (out_c, in_c_per_group, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    if len(shape) == 1:
        return shape[0], shape[0]
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal_(tensor, rng, nonlinearity="relu"):
    """He-normal init: std = gain / sqrt(fan_in)."""
    fan_in, _ = _fan_in_out(tensor.shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    std = gain / math.sqrt(fan_in)
    tensor.data = (rng.standard_normal(tensor.shape) * std).astype(tensor.dtype, copy=False)
    return tensor


def kaiming_uniform_(tensor, rng, nonlinearity="relu"):
    """He-uniform init: bound = gain * sqrt(3 / fan_in)."""
    fan_in, _ = _fan_in_out(tensor.shape)
    gain = math.sqrt(2.0) if nonlinearity == "relu" else 1.0
    bound = gain * math.sqrt(3.0 / fan_in)
    tensor.data = rng.uniform(-bound, bound, size=tensor.shape).astype(tensor.dtype, copy=False)
    return tensor


def xavier_normal_(tensor, rng):
    """Glorot-normal init: std = sqrt(2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(tensor.shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    tensor.data = (rng.standard_normal(tensor.shape) * std).astype(tensor.dtype, copy=False)
    return tensor


def xavier_uniform_(tensor, rng):
    """Glorot-uniform init: bound = sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_out(tensor.shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    tensor.data = rng.uniform(-bound, bound, size=tensor.shape).astype(tensor.dtype, copy=False)
    return tensor


def constant_(tensor, value):
    """Fill with a constant."""
    tensor.data = np.full(tensor.shape, float(value), dtype=tensor.dtype)
    return tensor


def zeros_(tensor):
    """Fill with zeros."""
    return constant_(tensor, 0.0)


def ones_(tensor):
    """Fill with ones."""
    return constant_(tensor, 1.0)


def linear_bias_(tensor, rng, fan_in):
    """PyTorch-style bias init: U(-1/sqrt(fan_in), 1/sqrt(fan_in))."""
    bound = 1.0 / math.sqrt(fan_in) if fan_in > 0 else 0.0
    tensor.data = rng.uniform(-bound, bound, size=tensor.shape).astype(tensor.dtype, copy=False)
    return tensor
