"""Model summary: layer table with output shapes and parameter counts.

``summary(model, input_shape)`` runs a probe forward pass, hooking
every leaf module, and renders the familiar table — handy for checking
that a width-scaled experiment model is what you think it is.
"""

import numpy as np

from ..tensor import Tensor, no_grad


def collect_summary(model, input_shape, batch_size=2):
    """Run a probe batch; return per-leaf-module rows.

    Each row: ``{"name", "type", "output_shape", "params"}`` in
    execution order.  ``input_shape`` excludes the batch dimension.
    """
    rows = []
    originals = {}

    leaves = [
        (name, module)
        for name, module in model.named_modules()
        if not module._modules and name
    ]

    def make_wrapper(name, module, forward):
        def wrapped(*args, **kwargs):
            out = forward(*args, **kwargs)
            shape = tuple(out.shape) if hasattr(out, "shape") else None
            rows.append(
                {
                    "name": name,
                    "type": type(module).__name__,
                    "output_shape": shape,
                    "params": sum(p.size for p in module._parameters.values()),
                }
            )
            return out

        return wrapped

    try:
        for name, module in leaves:
            originals[name] = module.forward
            object.__setattr__(module, "forward", make_wrapper(name, module, module.forward))
        was_training = model.training
        model.eval()
        probe = Tensor(np.zeros((batch_size,) + tuple(input_shape)))
        with no_grad():
            model(probe)
        if was_training:
            model.train()
    finally:
        for name, module in leaves:
            if name in originals:
                object.__setattr__(module, "forward", originals[name])
    return rows


def summary(model, input_shape, batch_size=2):
    """Render the layer table as a string (also returns total counts)."""
    rows = collect_summary(model, input_shape, batch_size=batch_size)
    name_width = max([len(r["name"]) for r in rows] + [10])
    type_width = max([len(r["type"]) for r in rows] + [8])
    lines = [
        f"{'layer'.ljust(name_width)}  {'type'.ljust(type_width)}  "
        f"{'output shape':>20}  {'params':>10}",
        "-" * (name_width + type_width + 36),
    ]
    for row in rows:
        shape = str(row["output_shape"])
        lines.append(
            f"{row['name'].ljust(name_width)}  {row['type'].ljust(type_width)}  "
            f"{shape:>20}  {row['params']:>10,}"
        )
    total = model.num_parameters()
    lines.append("-" * (name_width + type_width + 36))
    lines.append(f"total trainable parameters: {total:,}")
    return "\n".join(lines)
