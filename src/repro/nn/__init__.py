"""``repro.nn`` — neural-network layers on top of the autograd engine.

All layers are composites of twice-differentiable primitives, so any
model assembled from them supports the double backpropagation HERO's
training rule requires.
"""

from .module import Module, Parameter, Sequential, Identity
from .linear import Linear, Flatten, linear
from .conv import (
    Conv2d,
    conv2d,
    conv_output_size,
    im2col_cache_clear,
    im2col_cache_info,
    im2col_indices,
)
from .pooling import (
    MaxPool2d,
    AvgPool2d,
    GlobalAvgPool2d,
    max_pool2d,
    avg_pool2d,
    global_avg_pool2d,
)
from .norm import BatchNorm1d, BatchNorm2d
from .norm_extra import LayerNorm, GroupNorm
from .activation import ReLU, ReLU6, Tanh, Sigmoid, LeakyReLU
from .activation_extra import GELU, SiLU, Softplus, ELU
from .dropout import Dropout
from .losses import CrossEntropyLoss, MSELoss, cross_entropy, mse_loss
from .summary import summary, collect_summary
from . import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "Identity",
    "Linear",
    "Flatten",
    "linear",
    "Conv2d",
    "conv2d",
    "conv_output_size",
    "im2col_cache_clear",
    "im2col_cache_info",
    "im2col_indices",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "LayerNorm",
    "GroupNorm",
    "ReLU",
    "ReLU6",
    "Tanh",
    "Sigmoid",
    "LeakyReLU",
    "GELU",
    "SiLU",
    "Softplus",
    "ELU",
    "Dropout",
    "CrossEntropyLoss",
    "MSELoss",
    "cross_entropy",
    "mse_loss",
    "summary",
    "collect_summary",
    "init",
]
