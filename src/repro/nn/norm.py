"""Batch normalization, expressed as differentiable composite ops.

Because the normalization is built from ``mean``/``var``/``sqrt``
primitives (rather than a fused kernel with a hand-written gradient),
second derivatives flow through BN exactly — HERO's Hessian penalty
sees the full curvature contribution of normalization layers.

Running statistics are plain numpy buffers updated outside the graph,
with PyTorch's convention: biased variance normalizes the batch,
unbiased variance accumulates into the running estimate.
"""

import numpy as np

from ..tensor import Tensor, default_dtype
from .module import Module, Parameter


class _BatchNorm(Module):
    def __init__(self, num_features, eps=1e-5, momentum=0.1, affine=True):
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.affine = affine
        dtype = default_dtype()
        if affine:
            self.weight = Parameter(np.ones(num_features, dtype=dtype))
            self.bias = Parameter(np.zeros(num_features, dtype=dtype))
        else:
            self.weight = None
            self.bias = None
        self.register_buffer("running_mean", np.zeros(num_features, dtype=dtype))
        self.register_buffer("running_var", np.ones(num_features, dtype=dtype))
        self.register_buffer("num_batches_tracked", np.zeros((), dtype=dtype))

    def _axes(self):
        raise NotImplementedError

    def _param_shape(self, ndim):
        raise NotImplementedError

    def forward(self, x):
        axes = self._axes()
        shape = self._param_shape(x.ndim)
        if self.training:
            mu = x.mean(axis=axes, keepdims=True)
            var = ((x - mu) * (x - mu)).mean(axis=axes, keepdims=True)
            count = x.size // self.num_features
            if count > 1:
                unbiased = var.data * (count / (count - 1))
            else:
                unbiased = var.data
            m = self.momentum
            self.set_buffer(
                "running_mean",
                (1 - m) * self.running_mean + m * mu.data.reshape(-1),
            )
            self.set_buffer(
                "running_var",
                (1 - m) * self.running_var + m * unbiased.reshape(-1),
            )
            self.set_buffer("num_batches_tracked", self.num_batches_tracked + 1)
        else:
            mu = Tensor(self.running_mean.reshape(shape), dtype=self.running_mean.dtype)
            var = Tensor(self.running_var.reshape(shape), dtype=self.running_var.dtype)
        x_hat = (x - mu) * (var + self.eps).pow(-0.5)
        if self.affine:
            x_hat = x_hat * self.weight.reshape(shape) + self.bias.reshape(shape)
        return x_hat

    def __repr__(self):
        return (
            f"{type(self).__name__}({self.num_features}, eps={self.eps}, "
            f"momentum={self.momentum}, affine={self.affine})"
        )


class BatchNorm1d(_BatchNorm):
    """Batch normalization over (N, C) or (N, C, L) inputs."""

    def _axes(self):
        return (0,) if self._last_ndim == 2 else (0, 2)

    def _param_shape(self, ndim):
        return (1, self.num_features) if ndim == 2 else (1, self.num_features, 1)

    def forward(self, x):
        if x.ndim not in (2, 3):
            raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got {x.ndim}-D")
        self._last_ndim = x.ndim
        return super().forward(x)


class BatchNorm2d(_BatchNorm):
    """Batch normalization over NCHW inputs."""

    def _axes(self):
        return (0, 2, 3)

    def _param_shape(self, ndim):
        return (1, self.num_features, 1, 1)

    def forward(self, x):
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects 4-D input, got {x.ndim}-D")
        return super().forward(x)
