"""Pooling layers, built on the same im2col gather as convolution."""

import numpy as np

from .conv import _pair, im2col_indices
from .module import Module


def _pool_patches(x, kernel_size, stride, padding, pad_value):
    """Extract pooling windows: returns (patches, oh, ow).

    ``patches`` has shape ``(N, OHW, C, KK)`` — for each output location
    and channel, the window contents.
    """
    kernel = _pair(kernel_size)
    stride = _pair(stride if stride is not None else kernel_size)
    padding = _pair(padding)
    if padding != (0, 0):
        ph, pw = padding
        x = x.pad(((0, 0), (0, 0), (ph, ph), (pw, pw)), value=pad_value)
    indices, oh, ow = im2col_indices(x.shape, kernel, stride, (1, 1))
    return x.take_flat(indices), oh, ow


def max_pool2d(x, kernel_size, stride=None, padding=0):
    """Functional max pooling over NCHW input."""
    n, c = x.shape[0], x.shape[1]
    patches, oh, ow = _pool_patches(x, kernel_size, stride, padding, -np.inf)
    out = patches.max(axis=3)  # (N, OHW, C)
    return out.transpose((0, 2, 1)).reshape(n, c, oh, ow)


def avg_pool2d(x, kernel_size, stride=None, padding=0):
    """Functional average pooling over NCHW input."""
    n, c = x.shape[0], x.shape[1]
    patches, oh, ow = _pool_patches(x, kernel_size, stride, padding, 0.0)
    out = patches.mean(axis=3)
    return out.transpose((0, 2, 1)).reshape(n, c, oh, ow)


def global_avg_pool2d(x):
    """Average over the spatial dimensions: (N, C, H, W) -> (N, C)."""
    return x.mean(axis=(2, 3))


class MaxPool2d(Module):
    """Max pooling layer."""

    def __init__(self, kernel_size, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x):
        return max_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self):
        return f"MaxPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class AvgPool2d(Module):
    """Average pooling layer."""

    def __init__(self, kernel_size, stride=None, padding=0):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding

    def forward(self, x):
        return avg_pool2d(x, self.kernel_size, self.stride, self.padding)

    def __repr__(self):
        return f"AvgPool2d(kernel_size={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool2d(Module):
    """Global average pooling: collapses H and W, returning (N, C)."""

    def forward(self, x):
        return global_avg_pool2d(x)
