"""Module/Parameter system — the container layer of ``repro.nn``.

Mirrors the familiar PyTorch contract: attribute assignment registers
parameters, buffers and submodules; ``parameters()`` walks the tree;
``train()``/``eval()`` toggle mode; ``state_dict`` round-trips weights.
"""

from collections import OrderedDict

import numpy as np

from ..tensor import Tensor, default_dtype


def _as_buffer(array, dtype=None):
    """Coerce buffer state to the engine dtype (or an existing buffer's)."""
    return np.asarray(array, dtype=default_dtype() if dtype is None else dtype)


class Parameter(Tensor):
    """A :class:`Tensor` that is a trainable leaf of a module tree."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)

    def __repr__(self):
        return f"Parameter(shape={self.shape})"


class Module:
    """Base class for all neural-network building blocks."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name, array):
        """Register non-trainable state (e.g. BatchNorm running stats).

        Buffers live in the engine dtype of the precision policy, like
        parameters.
        """
        self._buffers[name] = _as_buffer(array)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name, array):
        """Replace a registered buffer's value."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = _as_buffer(array, dtype=self._buffers[name].dtype)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix=""):
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self):
        for _name, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix=""):
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for name, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix=""):
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self):
        for _name, module in self.named_modules():
            yield module

    def num_parameters(self):
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Mode & grads
    # ------------------------------------------------------------------
    def train(self, mode=True):
        object.__setattr__(self, "training", bool(mode))
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self):
        return self.train(False)

    def zero_grad(self):
        for param in self.parameters():
            param.grad = None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return a flat ``name -> numpy array`` copy of all state."""
        state = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"{name}"] = buf.copy()
        return state

    def load_state_dict(self, state):
        """Load parameters and buffers from :meth:`state_dict` output."""
        params = dict(self.named_parameters())
        missing = []
        for name, value in state.items():
            if name in params:
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].shape} vs {value.shape}"
                    )
                params[name].data = value.astype(params[name].data.dtype)
            else:
                if not self._load_buffer(name, value):
                    missing.append(name)
        if missing:
            raise KeyError(f"state entries not found in module: {missing}")

    def _load_buffer(self, dotted_name, value):
        parts = dotted_name.split(".")
        target = self
        for part in parts[:-1]:
            if part not in target._modules:
                return False
            target = target._modules[part]
        leaf = parts[-1]
        if leaf in target._buffers:
            target.set_buffer(leaf, value)
            return True
        return False

    # ------------------------------------------------------------------
    # Calling
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self):
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain modules; the output of each feeds the next."""

    def __init__(self, *modules):
        super().__init__()
        for index, module in enumerate(modules):
            setattr(self, str(index), module)

    def __iter__(self):
        return iter(self._modules.values())

    def __len__(self):
        return len(self._modules)

    def __getitem__(self, index):
        return list(self._modules.values())[index]

    def forward(self, x):
        for module in self._modules.values():
            x = module(x)
        return x


class Identity(Module):
    """Pass-through module (handy for optional branches)."""

    def forward(self, x):
        return x
