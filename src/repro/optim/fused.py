"""Flat-buffer parameter/state arenas shared by the fused optimizers.

The reference optimizer loops issue roughly half a dozen small numpy
calls per parameter per step; on a ~30-tensor CNN that is a few hundred
ufunc launches whose fixed dispatch overhead dwarfs the arithmetic.
The fused path concatenates all parameters of one dtype into a single
contiguous buffer, hands reshaped views of it back to the ``nn``
modules (``param.data`` becomes a window into the arena), and performs
each optimizer update as a handful of full-arena ufuncs.

Every update rule in this package is purely elementwise, so the flat
update computes bit-for-bit the same values as the per-parameter
reference loop — pinned by ``tests/optim/test_fused_parity.py``.

External code is allowed to rebind ``param.data`` (QAT's per-step
weight quantization, ``Module.load_state_dict``):
:meth:`FlatParamGroup.sync` detects the rebind before each step, copies
the new values back into the arena, and hands the view out again.
In-place writes to the view (``repro.core.perturbation.apply_offsets``,
gradient-clipping reads) need no healing at all — views alias the
arena by construction.
"""

import numpy as np


class FlatParamGroup:
    """All parameters of one dtype flattened into one contiguous buffer."""

    __slots__ = ("dtype", "params", "indices", "offsets", "flat", "grad_flat", "views", "size", "_scratch")

    def __init__(self, dtype, params, indices):
        self.dtype = dtype
        self.params = params
        self.indices = indices  # positions in the optimizer's parameter list
        sizes = [int(p.data.size) for p in params]
        self.size = int(sum(sizes))
        bounds = [0]
        for size in sizes:
            bounds.append(bounds[-1] + size)
        self.offsets = list(zip(bounds[:-1], bounds[1:]))
        self.flat = np.empty(self.size, dtype=dtype)
        self.grad_flat = np.empty(self.size, dtype=dtype)
        self._scratch = []
        self.views = []
        for param, (lo, hi) in zip(params, self.offsets):
            view = self.flat[lo:hi].reshape(param.data.shape)
            np.copyto(view, param.data)
            param.data = view
            self.views.append(view)

    def scratch(self, k):
        """``k``-th persistent scratch buffer of the group's full size."""
        while len(self._scratch) <= k:
            self._scratch.append(np.empty(self.size, dtype=self.dtype))
        return self._scratch[k]

    def state_flat(self, per_param=None):
        """A zeroed state arena (momentum, Adam moments, ...).

        Returns ``(flat, views)`` with one view per parameter;
        ``per_param`` optionally seeds the slices (``None`` entries stay
        zero, matching the reference path's lazy ``zeros_like`` init).
        """
        flat = np.zeros(self.size, dtype=self.dtype)
        views = [
            flat[lo:hi].reshape(param.data.shape)
            for param, (lo, hi) in zip(self.params, self.offsets)
        ]
        if per_param is not None:
            for view, value in zip(views, per_param):
                if value is not None:
                    np.copyto(view, value, casting="unsafe")
        return flat, views

    def sync(self):
        """Re-absorb parameters whose ``.data`` was rebound externally.

        Returns ``False`` when a rebind changed shape or dtype — the
        caller must rebuild its groups — and ``True`` otherwise.
        """
        for param, view in zip(self.params, self.views):
            data = param.data
            if data is view:
                continue
            if data.shape != view.shape or data.dtype != view.dtype:
                return False
            np.copyto(view, data)
            param.data = view
        return True

    def gather_grads(self):
        """Copy every ``param.grad`` into the flat gradient buffer.

        Returns ``True`` when all grads are present and the fused update
        may run; ``False`` when any is ``None``, in which case the
        caller must fall back to per-parameter reference semantics —
        the reference loop *skips* grad-less parameters, and zero-filling
        their slice would wrongly advance their momentum state.
        """
        gf = self.grad_flat
        for param, (lo, hi) in zip(self.params, self.offsets):
            grad = param.grad
            if grad is None:
                return False
            # Same cast the reference loop's np.asarray(..., dtype=) does.
            np.copyto(gf[lo:hi].reshape(grad.data.shape), grad.data, casting="same_kind")
        return True


def build_groups(params):
    """Group ``params`` by dtype into :class:`FlatParamGroup` arenas."""
    by_dtype = {}
    for index, param in enumerate(params):
        entry = by_dtype.setdefault(param.data.dtype, ([], []))
        entry[0].append(param)
        entry[1].append(index)
    return [
        FlatParamGroup(dtype, group_params, indices)
        for dtype, (group_params, indices) in by_dtype.items()
    ]
