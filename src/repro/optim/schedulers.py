"""Learning-rate schedulers.

The paper trains every method with a cosine schedule from an initial
learning rate of 0.1; :class:`CosineAnnealingLR` is the default in the
experiment harness.
"""

import math


class LRScheduler:
    """Base scheduler: call :meth:`step` once per epoch."""

    def __init__(self, optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self, epoch):
        """Learning rate to use *after* ``epoch`` steps."""
        raise NotImplementedError

    def step(self):
        """Advance one epoch and update the optimizer's lr."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr(self.epoch)

    @property
    def current_lr(self):
        """The optimizer's current learning rate."""
        return self.optimizer.lr


class ConstantLR(LRScheduler):
    """No-op scheduler."""

    def get_lr(self, epoch):
        return self.base_lr


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from ``base_lr`` to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer, t_max, eta_min=0.0):
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self, epoch):
        epoch = min(epoch, self.t_max)
        cosine = 0.5 * (1.0 + math.cos(math.pi * epoch / self.t_max))
        return self.eta_min + (self.base_lr - self.eta_min) * cosine


class StepLR(LRScheduler):
    """Multiply the lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size, gamma=0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self, epoch):
        return self.base_lr * (self.gamma ** (epoch // self.step_size))


class WarmupCosineLR(CosineAnnealingLR):
    """Linear warmup for ``warmup_epochs`` followed by cosine decay."""

    def __init__(self, optimizer, t_max, warmup_epochs=0, eta_min=0.0):
        super().__init__(optimizer, t_max, eta_min)
        self.warmup_epochs = warmup_epochs

    def get_lr(self, epoch):
        if self.warmup_epochs and epoch < self.warmup_epochs:
            return self.base_lr * (epoch + 1) / self.warmup_epochs
        return super().get_lr(epoch - self.warmup_epochs)
