"""Adam and AdamW optimizers.

The paper trains everything with SGD+momentum, but downstream users of
the HERO trainers routinely want adaptive optimizers (the outer update
of Eq. 17 is optimizer-agnostic: HERO hands a gradient to whatever
optimizer is configured).  ``AdamW`` uses decoupled weight decay
(Loshchilov & Hutter), which composes correctly with HERO's gradient —
the ``alpha * W`` term of Eq. 17 then acts on the weights directly
rather than through the second-moment normalization.
"""

import numpy as np

from .optimizer import Optimizer


class Adam(Optimizer):
    """Adam with the standard bias-corrected moment estimates.

    ``weight_decay`` here is the *coupled* L2 form (added to the
    gradient before the moment updates), matching the original Adam.
    """

    def __init__(
        self,
        params,
        lr=1e-3,
        betas=(0.9, 0.999),
        eps=1e-8,
        weight_decay=0.0,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._exp_avg = [None] * len(self.params)
        self._exp_avg_sq = [None] * len(self.params)

    def _apply_decay_to_grad(self, param, grad):
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def _decay_weights_directly(self, param):
        pass  # coupled variant decays through the gradient

    def step(self):
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            # Moments (zeros_like) live in the parameter's dtype; cast
            # the gradient once so the whole update stays in the engine
            # precision.
            grad = np.asarray(param.grad.data, dtype=param.data.dtype)
            grad = self._apply_decay_to_grad(param, grad)
            m = self._exp_avg[index]
            v = self._exp_avg_sq[index]
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._exp_avg[index] = m
            self._exp_avg_sq[index] = v
            m_hat = m / bias1
            v_hat = v / bias2
            self._decay_weights_directly(param)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self):
        state = super().state_dict()
        state.update(
            betas=(self.beta1, self.beta2),
            eps=self.eps,
            weight_decay=self.weight_decay,
            step_count=self._step_count,
            exp_avg=[None if m is None else m.copy() for m in self._exp_avg],
            exp_avg_sq=[None if v is None else v.copy() for v in self._exp_avg_sq],
        )
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.beta1, self.beta2 = state["betas"]
        self.eps = state["eps"]
        self.weight_decay = state["weight_decay"]
        self._step_count = state["step_count"]
        self._exp_avg = [None if m is None else m.copy() for m in state["exp_avg"]]
        self._exp_avg_sq = [
            None if v is None else v.copy() for v in state["exp_avg_sq"]
        ]


class AdamW(Adam):
    """Adam with decoupled weight decay: ``w <- w - lr * wd * w`` applied
    separately from the adaptive update."""

    def _apply_decay_to_grad(self, param, grad):
        return grad  # decay is decoupled

    def _decay_weights_directly(self, param):
        if self.weight_decay:
            param.data = param.data - self.lr * self.weight_decay * param.data
