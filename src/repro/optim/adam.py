"""Adam and AdamW optimizers.

The paper trains everything with SGD+momentum, but downstream users of
the HERO trainers routinely want adaptive optimizers (the outer update
of Eq. 17 is optimizer-agnostic: HERO hands a gradient to whatever
optimizer is configured).  ``AdamW`` uses decoupled weight decay
(Loshchilov & Hutter), which composes correctly with HERO's gradient —
the ``alpha * W`` term of Eq. 17 then acts on the weights directly
rather than through the second-moment normalization.

Like :class:`~repro.optim.SGD`, both expose a fused flat-arena path
(``fused=True``, the default) and a per-parameter reference loop
(``fused=False``) that compute bit-identical updates — the rule is
purely elementwise; ``tests/optim/test_fused_parity.py`` pins the
equality.
"""

import numpy as np

from .fused import build_groups
from .optimizer import Optimizer


class Adam(Optimizer):
    """Adam with the standard bias-corrected moment estimates.

    ``weight_decay`` here is the *coupled* L2 form (added to the
    gradient before the moment updates), matching the original Adam.
    """

    _decoupled_decay = False

    def __init__(
        self,
        params,
        lr=1e-3,
        betas=(0.9, 0.999),
        eps=1e-8,
        weight_decay=0.0,
        fused=True,
    ):
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ValueError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.fused = bool(fused)
        self._step_count = 0
        self._exp_avg = [None] * len(self.params)
        self._exp_avg_sq = [None] * len(self.params)
        self._groups = None
        self._moment_flats = None

    def _apply_decay_to_grad(self, param, grad):
        if self.weight_decay:
            return grad + self.weight_decay * param.data
        return grad

    def _decay_weights_directly(self, param):
        pass  # coupled variant decays through the gradient

    # ------------------------------------------------------------------
    # Fused flat-arena path
    # ------------------------------------------------------------------
    def _build(self):
        """(Re)build the flat arenas, preserving moment state values."""
        self._groups = build_groups(self.params)
        self._moment_flats = []
        m_seeds = list(self._exp_avg)
        v_seeds = list(self._exp_avg_sq)
        for group in self._groups:
            m_flat, m_views = group.state_flat([m_seeds[i] for i in group.indices])
            v_flat, v_views = group.state_flat([v_seeds[i] for i in group.indices])
            self._moment_flats.append((m_flat, v_flat))
            for index, m_view, v_view in zip(group.indices, m_views, v_views):
                self._exp_avg[index] = m_view
                self._exp_avg_sq[index] = v_view

    def step(self):
        self._step_count += 1
        t = self._step_count
        bias1 = 1.0 - self.beta1 ** t
        bias2 = 1.0 - self.beta2 ** t
        if not self.fused:
            self._step_reference(bias1, bias2)
            return
        if self._groups is None:
            self._build()
        else:
            for group in self._groups:
                if not group.sync():
                    self._build()
                    break
        for position, group in enumerate(self._groups):
            if group.gather_grads():
                self._step_fused_group(position, group, bias1, bias2)
            else:
                self._step_fallback_group(group, bias1, bias2)

    def _step_fused_group(self, position, group, bias1, bias2):
        w = group.flat
        g = group.grad_flat
        m, v = self._moment_flats[position]
        s0 = group.scratch(0)
        s1 = group.scratch(1)
        # Mirrors the reference expressions ufunc for ufunc (elementwise
        # throughout, so the flat layout changes no bit of any result).
        if self.weight_decay and not self._decoupled_decay:
            np.multiply(w, self.weight_decay, out=s0)
            np.add(g, s0, out=g)
        # m <- beta1 * m + (1 - beta1) * g
        np.multiply(m, self.beta1, out=m)
        np.multiply(g, 1.0 - self.beta1, out=s0)
        np.add(m, s0, out=m)
        # v <- beta2 * v + ((1 - beta2) * g) * g
        np.multiply(g, 1.0 - self.beta2, out=s0)
        np.multiply(s0, g, out=s0)
        np.multiply(v, self.beta2, out=v)
        np.add(v, s0, out=v)
        # m_hat / (sqrt(v_hat) + eps)
        np.divide(m, bias1, out=s0)
        np.divide(v, bias2, out=s1)
        np.sqrt(s1, out=s1)
        np.add(s1, self.eps, out=s1)
        if self.weight_decay and self._decoupled_decay:
            # w <- w - (lr * wd) * w, before the adaptive update, as the
            # reference _decay_weights_directly hook does.
            np.multiply(w, self.lr * self.weight_decay, out=g)
            np.subtract(w, g, out=w)
        np.multiply(s0, self.lr, out=s0)
        np.divide(s0, s1, out=s0)
        np.subtract(w, s0, out=w)

    def _step_fallback_group(self, group, bias1, bias2):
        """Per-parameter updates for a group with missing grads.

        Reference semantics (grad-less params untouched, their moments
        frozen), writing through the arena views so the flat buffer
        stays authoritative.
        """
        for index, param in zip(group.indices, group.params):
            if param.grad is None:
                continue
            grad = np.asarray(param.grad.data, dtype=param.data.dtype)
            grad = self._apply_decay_to_grad(param, grad)
            m_view = self._exp_avg[index]
            v_view = self._exp_avg_sq[index]
            np.copyto(m_view, self.beta1 * m_view + (1 - self.beta1) * grad)
            np.copyto(v_view, self.beta2 * v_view + (1 - self.beta2) * grad * grad)
            m_hat = m_view / bias1
            v_hat = v_view / bias2
            if self.weight_decay and self._decoupled_decay:
                np.subtract(
                    param.data, self.lr * self.weight_decay * param.data, out=param.data
                )
            np.subtract(
                param.data, self.lr * m_hat / (np.sqrt(v_hat) + self.eps), out=param.data
            )

    # ------------------------------------------------------------------
    # Reference per-parameter path
    # ------------------------------------------------------------------
    def _step_reference(self, bias1, bias2):
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            # Moments (zeros_like) live in the parameter's dtype; cast
            # the gradient once so the whole update stays in the engine
            # precision.
            grad = np.asarray(param.grad.data, dtype=param.data.dtype)
            grad = self._apply_decay_to_grad(param, grad)
            m = self._exp_avg[index]
            v = self._exp_avg_sq[index]
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._exp_avg[index] = m
            self._exp_avg_sq[index] = v
            m_hat = m / bias1
            v_hat = v / bias2
            self._decay_weights_directly(param)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self):
        state = super().state_dict()
        state.update(
            betas=(self.beta1, self.beta2),
            eps=self.eps,
            weight_decay=self.weight_decay,
            step_count=self._step_count,
            exp_avg=[None if m is None else m.copy() for m in self._exp_avg],
            exp_avg_sq=[None if v is None else v.copy() for v in self._exp_avg_sq],
        )
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.beta1, self.beta2 = state["betas"]
        self.eps = state["eps"]
        self.weight_decay = state["weight_decay"]
        self._step_count = state["step_count"]
        if self._moment_flats is None:
            self._exp_avg = [None if m is None else m.copy() for m in state["exp_avg"]]
            self._exp_avg_sq = [
                None if v is None else v.copy() for v in state["exp_avg_sq"]
            ]
        else:
            for index, (m_value, v_value) in enumerate(
                zip(state["exp_avg"], state["exp_avg_sq"])
            ):
                for view, value in (
                    (self._exp_avg[index], m_value),
                    (self._exp_avg_sq[index], v_value),
                ):
                    if value is None:
                        view[...] = 0
                    else:
                        np.copyto(view, value, casting="unsafe")


class AdamW(Adam):
    """Adam with decoupled weight decay: ``w <- w - lr * wd * w`` applied
    separately from the adaptive update."""

    _decoupled_decay = True

    def _apply_decay_to_grad(self, param, grad):
        return grad  # decay is decoupled

    def _decay_weights_directly(self, param):
        if self.weight_decay:
            param.data = param.data - self.lr * self.weight_decay * param.data
