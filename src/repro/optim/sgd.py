"""Stochastic gradient descent with momentum and weight decay.

This is the optimizer under every method in the paper: SGD itself, and
the outer update of GRAD-L1, SAM ("first-order only") and HERO — those
methods differ only in the gradient they hand to this update rule
(Eq. 17 folds the weight-decay term ``alpha * W`` into the gradient,
which is exactly ``weight_decay`` here).
"""

import numpy as np

from .optimizer import Optimizer


class SGD(Optimizer):
    """SGD with classical momentum.

    Update (PyTorch convention):
        ``v <- mu * v + (g + wd * w)``;  ``w <- w - lr * v``
    with optional Nesterov lookahead.
    """

    def __init__(self, params, lr=0.1, momentum=0.0, weight_decay=0.0, nesterov=False):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity = [None] * len(self.params)

    def step(self):
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            # Update in the parameter's own dtype: state buffers
            # (zeros_like) already match it, so the whole step stays in
            # the engine precision.
            grad = np.asarray(param.grad.data, dtype=param.data.dtype)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[index]
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data = param.data - self.lr * grad

    def state_dict(self):
        state = super().state_dict()
        state.update(
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            nesterov=self.nesterov,
            velocity=[None if v is None else v.copy() for v in self._velocity],
        )
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        self._velocity = [None if v is None else v.copy() for v in state["velocity"]]
