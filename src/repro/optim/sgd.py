"""Stochastic gradient descent with momentum and weight decay.

This is the optimizer under every method in the paper: SGD itself, and
the outer update of GRAD-L1, SAM ("first-order only") and HERO — those
methods differ only in the gradient they hand to this update rule
(Eq. 17 folds the weight-decay term ``alpha * W`` into the gradient,
which is exactly ``weight_decay`` here).

Two execution paths compute the same update (bit-for-bit — the rule is
purely elementwise, and ``tests/optim/test_fused_parity.py`` pins the
equality):

* ``fused=True`` (default): all parameters of one dtype live in a
  contiguous flat arena (:mod:`repro.optim.fused`) and the whole step
  is a handful of full-arena ufuncs;
* ``fused=False``: the straightforward per-parameter reference loop.
"""

import numpy as np

from .fused import build_groups
from .optimizer import Optimizer


class SGD(Optimizer):
    """SGD with classical momentum.

    Update (PyTorch convention):
        ``v <- mu * v + (g + wd * w)``;  ``w <- w - lr * v``
    with optional Nesterov lookahead.
    """

    def __init__(
        self,
        params,
        lr=0.1,
        momentum=0.0,
        weight_decay=0.0,
        nesterov=False,
        fused=True,
    ):
        super().__init__(params, lr)
        if momentum < 0:
            raise ValueError(f"momentum must be non-negative, got {momentum}")
        if weight_decay < 0:
            raise ValueError(f"weight_decay must be non-negative, got {weight_decay}")
        if nesterov and momentum == 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self.fused = bool(fused)
        self._velocity = [None] * len(self.params)
        self._groups = None
        self._velocity_flats = None

    # ------------------------------------------------------------------
    # Fused flat-arena path
    # ------------------------------------------------------------------
    def _build(self):
        """(Re)build the flat arenas, preserving momentum state values."""
        self._groups = build_groups(self.params)
        self._velocity_flats = None
        self._ensure_velocity()

    def _ensure_velocity(self):
        """Allocate flat momentum state, seeded from ``_velocity``."""
        if not self.momentum or self._groups is None or self._velocity_flats is not None:
            return
        self._velocity_flats = []
        seeds = list(self._velocity)
        for group in self._groups:
            flat, views = group.state_flat([seeds[i] for i in group.indices])
            self._velocity_flats.append(flat)
            for index, view in zip(group.indices, views):
                self._velocity[index] = view

    def step(self):
        if not self.fused:
            self._step_reference()
            return
        if self._groups is None:
            self._build()
        else:
            for group in self._groups:
                if not group.sync():
                    self._build()
                    break
            else:
                self._ensure_velocity()
        for position, group in enumerate(self._groups):
            if group.gather_grads():
                self._step_fused_group(position, group)
            else:
                self._step_fallback_group(group)

    def _step_fused_group(self, position, group):
        w = group.flat
        g = group.grad_flat
        # Mirrors the reference expressions ufunc for ufunc; every op is
        # elementwise, so the flat layout changes no bit of any result.
        if self.weight_decay:
            t = group.scratch(0)
            np.multiply(w, self.weight_decay, out=t)
            np.add(g, t, out=g)
        if self.momentum:
            v = self._velocity_flats[position]
            np.multiply(v, self.momentum, out=v)
            np.add(v, g, out=v)
            if self.nesterov:
                t = group.scratch(0)
                np.multiply(v, self.momentum, out=t)
                np.add(g, t, out=g)
                update = g
            else:
                update = v
        else:
            update = g
        t = group.scratch(0)
        np.multiply(update, self.lr, out=t)
        np.subtract(w, t, out=w)

    def _step_fallback_group(self, group):
        """Per-parameter updates for a group with missing grads.

        Reference semantics (grad-less params untouched, their momentum
        frozen), but writing through the arena views so the flat buffer
        stays authoritative.
        """
        for index, param in zip(group.indices, group.params):
            if param.grad is None:
                continue
            grad = np.asarray(param.grad.data, dtype=param.data.dtype)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[index]
                new_velocity = self.momentum * velocity + grad
                np.copyto(velocity, new_velocity)
                grad = grad + self.momentum * new_velocity if self.nesterov else new_velocity
            np.subtract(param.data, self.lr * grad, out=param.data)

    # ------------------------------------------------------------------
    # Reference per-parameter path
    # ------------------------------------------------------------------
    def _step_reference(self):
        for index, param in enumerate(self.params):
            if param.grad is None:
                continue
            # Update in the parameter's own dtype: state buffers
            # (zeros_like) already match it, so the whole step stays in
            # the engine precision.
            grad = np.asarray(param.grad.data, dtype=param.data.dtype)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity[index]
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[index] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data = param.data - self.lr * grad

    def state_dict(self):
        state = super().state_dict()
        state.update(
            momentum=self.momentum,
            weight_decay=self.weight_decay,
            nesterov=self.nesterov,
            velocity=[None if v is None else v.copy() for v in self._velocity],
        )
        return state

    def load_state_dict(self, state):
        super().load_state_dict(state)
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self.nesterov = state["nesterov"]
        values = state["velocity"]
        if self._velocity_flats is None:
            self._velocity = [None if v is None else v.copy() for v in values]
        else:
            for index, value in enumerate(values):
                view = self._velocity[index]
                if value is None:
                    view[...] = 0
                else:
                    np.copyto(view, value, casting="unsafe")
