"""Optimizer base class."""


class Optimizer:
    """Base optimizer over a list of :class:`~repro.nn.Parameter`.

    Subclasses implement :meth:`step`, reading each parameter's
    ``.grad`` and updating ``.data`` in place.
    """

    def __init__(self, params, lr):
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = params
        self.lr = float(lr)

    def zero_grad(self):
        """Clear accumulated gradients."""
        for param in self.params:
            param.grad = None

    def step(self):
        raise NotImplementedError

    def state_dict(self):
        """Optimizer hyper-state (subclasses extend)."""
        return {"lr": self.lr}

    def load_state_dict(self, state):
        self.lr = state["lr"]
