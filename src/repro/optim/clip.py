"""Gradient clipping utilities.

Applied between a trainer's ``training_step`` and ``optimizer.step()``
(the HERO gradient of Eq. 17 can spike early in training when the
Hessian penalty is large; norm clipping is the standard mitigation).
"""

import numpy as np


def clip_grad_norm_(params, max_norm, eps=1e-12):
    """Scale all gradients so their *global* l2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in params if p.grad is not None]
    total = np.sqrt(sum(float(np.sum(g.data ** 2)) for g in grads))
    if total > max_norm:
        scale = max_norm / (total + eps)
        for g in grads:
            g.data = g.data * scale
    return total


def clip_grad_value_(params, max_value):
    """Clamp each gradient element to ``[-max_value, max_value]``."""
    if max_value <= 0:
        raise ValueError(f"max_value must be positive, got {max_value}")
    for p in params:
        if p.grad is not None:
            p.grad.data = np.clip(p.grad.data, -max_value, max_value)
