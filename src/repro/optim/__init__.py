"""``repro.optim`` — SGD and learning-rate schedules."""

from .optimizer import Optimizer
from .sgd import SGD
from .adam import Adam, AdamW
from .clip import clip_grad_norm_, clip_grad_value_
from .schedulers import (
    LRScheduler,
    ConstantLR,
    CosineAnnealingLR,
    StepLR,
    WarmupCosineLR,
)

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "clip_grad_norm_",
    "clip_grad_value_",
    "LRScheduler",
    "ConstantLR",
    "CosineAnnealingLR",
    "StepLR",
    "WarmupCosineLR",
]
