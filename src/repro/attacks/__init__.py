"""``repro.attacks`` — input-space adversarial evaluation.

HERO's Sec. 2.3 takes its Hessian-regularization idea from CURE
(Moosavi-Dezfooli et al. [18]), which works in *input* space.  This
package provides the standard input-perturbation attacks (FGSM, PGD)
used to evaluate that connection, plus robust-accuracy evaluation.
"""

from .gradient_attacks import fgsm, pgd, input_gradient, robust_accuracy

__all__ = ["fgsm", "pgd", "input_gradient", "robust_accuracy"]
