"""Gradient-based input attacks: FGSM and PGD.

Both operate on numpy batches, differentiate the loss w.r.t. the
*input* tensor (the engine treats any tensor with ``requires_grad`` as
a leaf — inputs included), and leave model parameters and their grads
untouched.
"""

import numpy as np

from ..tensor import Tensor, default_dtype, no_grad


def input_gradient(model, loss_fn, x, y):
    """Gradient of the batch loss w.r.t. the input ``x``."""
    was_training = model.training
    model.eval()
    for p in model.parameters():
        p.grad = None
    x_tensor = Tensor(np.asarray(x, dtype=default_dtype()), requires_grad=True)
    loss = loss_fn(model(x_tensor), y)
    loss.backward()
    grad = (
        np.zeros_like(x_tensor.data) if x_tensor.grad is None else x_tensor.grad.data.copy()
    )
    for p in model.parameters():
        p.grad = None
    if was_training:
        model.train()
    return grad, float(loss.data)


def fgsm(model, loss_fn, x, y, epsilon):
    """Fast Gradient Sign Method: ``x + eps * sign(dL/dx)``."""
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    grad, _loss = input_gradient(model, loss_fn, x, y)
    return np.asarray(x) + epsilon * np.sign(grad)


def pgd(model, loss_fn, x, y, epsilon, steps=10, step_size=None, seed=None):
    """Projected Gradient Descent within an l-inf ball of ``epsilon``.

    ``step_size`` defaults to ``2.5 * epsilon / steps`` (the standard
    choice); a ``seed`` enables random initialization inside the ball.
    """
    if epsilon < 0:
        raise ValueError(f"epsilon must be non-negative, got {epsilon}")
    if steps <= 0:
        raise ValueError(f"steps must be positive, got {steps}")
    x = np.asarray(x, dtype=default_dtype())
    step = step_size if step_size is not None else 2.5 * epsilon / steps
    if seed is not None:
        rng = np.random.default_rng(seed)
        adversarial = x + rng.uniform(-epsilon, epsilon, size=x.shape)
    else:
        adversarial = x.copy()
    for _ in range(steps):
        grad, _loss = input_gradient(model, loss_fn, adversarial, y)
        adversarial = adversarial + step * np.sign(grad)
        adversarial = np.clip(adversarial, x - epsilon, x + epsilon)
    return adversarial


def robust_accuracy(model, loss_fn, x, y, epsilon, attack="pgd", **attack_kwargs):
    """Accuracy on adversarially perturbed inputs."""
    attacks = {"fgsm": fgsm, "pgd": pgd}
    if attack not in attacks:
        raise KeyError(f"unknown attack {attack!r}; have {sorted(attacks)}")
    adversarial = attacks[attack](model, loss_fn, x, y, epsilon, **attack_kwargs)
    model.eval()
    with no_grad():
        logits = model(Tensor(adversarial)).data
    model.train()
    return float((logits.argmax(axis=1) == np.asarray(y)).mean())
