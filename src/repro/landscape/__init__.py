"""``repro.landscape`` — loss-surface visualization (Li et al. [15])."""

from .directions import (
    random_direction,
    filter_normalize,
    orthogonalize,
    make_plot_directions,
)
from .interpolation import interpolation_path, barrier_height
from .surface import (
    loss_surface,
    loss_line,
    flat_area_fraction,
    max_loss_increase,
    ascii_contour,
)

__all__ = [
    "interpolation_path",
    "barrier_height",
    "random_direction",
    "filter_normalize",
    "orthogonalize",
    "make_plot_directions",
    "loss_surface",
    "loss_line",
    "flat_area_fraction",
    "max_loss_increase",
    "ascii_contour",
]
