"""Random directions in weight space, filter-normalized per Li et al. [15].

The paper's Fig. 3 plots the loss contour along two random directions
using the visualization tool of [15]: each random direction ``d`` is
rescaled filter-by-filter so ``||d_f|| = ||w_f||`` — removing the
scale-invariance artifacts of ReLU/BN networks and making HERO-vs-SGD
contours comparable "under the same scale".
"""

import numpy as np


def random_direction(params, seed=0):
    """A Gaussian random direction matching the parameter shapes."""
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(p.data.shape) for p in params]


def filter_normalize(direction, params):
    """Rescale ``direction`` filter-wise to the weights' norms.

    * Conv weights (4-D): per output filter ``w[j]``.
    * Linear weights (2-D): per output row.
    * 1-D parameters (biases, BN scale/shift): zeroed, following [15]
      — perturbing them dominates the picture without being
      informative about the conv/fc landscape.
    """
    normalized = []
    for d, p in zip(direction, params):
        w = p.data
        if w.ndim >= 2:
            d_new = d.copy()
            flat_d = d_new.reshape(w.shape[0], -1)
            flat_w = w.reshape(w.shape[0], -1)
            d_norms = np.linalg.norm(flat_d, axis=1, keepdims=True)
            w_norms = np.linalg.norm(flat_w, axis=1, keepdims=True)
            scale = np.where(d_norms > 1e-12, w_norms / np.maximum(d_norms, 1e-12), 0.0)
            normalized.append((flat_d * scale).reshape(w.shape))
        else:
            normalized.append(np.zeros_like(w))
    return normalized


def orthogonalize(direction, reference):
    """Remove from ``direction`` its component along ``reference``.

    Keeps two plotting axes from being accidentally correlated, which
    would squash the 2-D contour.
    """
    dot = sum(float(np.sum(d * r)) for d, r in zip(direction, reference))
    ref_sq = sum(float(np.sum(r * r)) for r in reference)
    if ref_sq < 1e-20:
        return [d.copy() for d in direction]
    coef = dot / ref_sq
    return [d - coef * r for d, r in zip(direction, reference)]


def make_plot_directions(params, seed=0):
    """Two filter-normalized, mutually orthogonalized directions."""
    d1 = filter_normalize(random_direction(params, seed=seed), params)
    d2_raw = random_direction(params, seed=seed + 1)
    d2 = filter_normalize(orthogonalize(d2_raw, d1), params)
    return d1, d2
