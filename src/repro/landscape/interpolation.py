"""Linear interpolation paths between trained models.

The classic mode-connectivity probe: evaluate
``L((1 - t) W_a + t W_b)`` for ``t`` along ``[start, stop]``.  Between
a HERO optimum and an SGD optimum the path shows whether the two
methods find basins separated by a barrier — complementary evidence to
Fig. 3's per-optimum contours.
"""

import numpy as np

from ..tensor import Tensor, no_grad
from ..hessian.hvp import restore_buffers, snapshot_buffers


def interpolation_path(
    model, state_a, state_b, loss_fn, batches, steps=11, start=-0.25, stop=1.25
):
    """Loss along the segment between two state dicts.

    Parameters
    ----------
    model:
        A model of the right architecture (used as the evaluation
        vehicle; its own weights are restored afterwards).
    state_a, state_b:
        ``state_dict()``-style mappings with identical keys.
    batches:
        List of ``(x, y)`` pairs evaluated at every point.
    steps, start, stop:
        Grid of interpolation coefficients; extending slightly past
        [0, 1] shows the walls of both basins.

    Returns ``{"ts": array, "loss": array}``.
    """
    if set(state_a) != set(state_b):
        raise ValueError("state dicts have different keys")
    params = dict(model.named_parameters())
    missing = [k for k in params if k not in state_a]
    if missing:
        raise ValueError(f"state dicts missing parameters: {missing}")

    original = model.state_dict()
    buffers = snapshot_buffers(model)
    batches = list(batches)
    ts = np.linspace(start, stop, steps)
    losses = np.empty(steps)
    try:
        model.eval()
        for index, t in enumerate(ts):
            for name, param in params.items():
                param.data = (1.0 - t) * np.asarray(state_a[name]) + t * np.asarray(
                    state_b[name]
                )
            total, count = 0.0, 0
            with no_grad():
                for x, y in batches:
                    loss = loss_fn(model(Tensor(x)), y)
                    total += float(loss.data) * len(y)
                    count += len(y)
            losses[index] = total / max(count, 1)
    finally:
        model.load_state_dict(original)
        restore_buffers(model, buffers)
        model.train()
    return {"ts": ts, "loss": losses}


def barrier_height(path):
    """Max loss on the [0, 1] segment above the endpoint maximum.

    Zero (or negative, clipped to 0) means the two optima are linearly
    mode-connected on this data.
    """
    ts = path["ts"]
    losses = path["loss"]
    inside = (ts >= 0.0) & (ts <= 1.0)
    if not inside.any():
        raise ValueError("path does not cover [0, 1]")
    end_a = losses[np.argmin(np.abs(ts - 0.0))]
    end_b = losses[np.argmin(np.abs(ts - 1.0))]
    peak = losses[inside].max()
    return float(max(0.0, peak - max(end_a, end_b)))
