"""Loss-surface evaluation around converged weights (Fig. 3).

Evaluates ``L(W + a d1 + b d2)`` on a grid, returns the loss matrix
plus summary statistics — in particular the *flat-region area*: the
fraction of the plotted neighborhood whose loss increase stays below a
tolerance (the paper reads this off the inner contour circle at +0.1).
A terminal-friendly ASCII contour renderer is included since the
environment has no plotting stack.
"""

import numpy as np

from ..tensor import Tensor, no_grad
from ..hessian.hvp import restore_buffers, snapshot_buffers


def _loss_on_batches(model, loss_fn, batches):
    model.eval()
    total, weight = 0.0, 0
    with no_grad():
        for x, y in batches:
            loss = loss_fn(model(Tensor(x)), y)
            total += float(loss.data) * len(y)
            weight += len(y)
    return total / max(weight, 1)


def loss_line(model, loss_fn, batches, direction, radius=1.0, steps=11):
    """1-D slice ``L(W + a d)`` for ``a`` in ``[-radius, radius]``."""
    return loss_surface(
        model,
        loss_fn,
        batches,
        direction,
        [np.zeros_like(d) for d in direction],
        radius=radius,
        steps=(steps, 1),
    )


def loss_surface(model, loss_fn, batches, d1, d2, radius=1.0, steps=(11, 11)):
    """2-D loss grid around the current weights.

    Parameters
    ----------
    batches:
        A list of ``(x, y)`` pairs (materialized so every grid point
        sees identical data).
    d1, d2:
        Plot directions (parameter-shaped lists).
    radius:
        Half-width of the plotted square in direction units.
    steps:
        Grid resolution ``(n_a, n_b)``.

    Returns a dict with ``alphas``, ``betas``, ``loss`` (2-D array) and
    ``center_loss``.
    """
    params = [p for p in model.parameters()]
    originals = [p.data.copy() for p in params]
    buffers = snapshot_buffers(model)
    batches = list(batches)
    n_a, n_b = steps
    alphas = np.linspace(-radius, radius, n_a)
    betas = np.linspace(-radius, radius, n_b) if n_b > 1 else np.array([0.0])
    losses = np.empty((len(alphas), len(betas)))
    try:
        for i, a in enumerate(alphas):
            for j, b in enumerate(betas):
                for p, orig, v1, v2 in zip(params, originals, d1, d2):
                    p.data = orig + a * v1 + b * v2
                losses[i, j] = _loss_on_batches(model, loss_fn, batches)
    finally:
        for p, orig in zip(params, originals):
            p.data = orig
        restore_buffers(model, buffers)
    center = _loss_on_batches(model, loss_fn, batches)
    return {"alphas": alphas, "betas": betas, "loss": losses, "center_loss": center}


def flat_area_fraction(surface, tolerance=0.1):
    """Fraction of grid points with loss increase below ``tolerance``.

    The quantitative counterpart of the paper's "larger region within
    the inner contour circle indicating a 0.1 loss increase".
    """
    losses = surface["loss"]
    return float((losses <= surface["center_loss"] + tolerance).mean())


def max_loss_increase(surface):
    """Worst loss increase over the plotted neighborhood."""
    return float(surface["loss"].max() - surface["center_loss"])


_ASCII_LEVELS = " .:-=+*#%@"


def ascii_contour(surface, width=None):
    """Render a loss surface as ASCII art (darker = higher loss)."""
    losses = surface["loss"]
    low = losses.min()
    span = max(losses.max() - low, 1e-12)
    normalized = (losses - low) / span
    chars = np.clip((normalized * (len(_ASCII_LEVELS) - 1)).astype(int), 0, len(_ASCII_LEVELS) - 1)
    lines = []
    for row in chars:
        lines.append("".join(_ASCII_LEVELS[c] for c in row))
    return "\n".join(lines)
