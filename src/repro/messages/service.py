"""Service-layer record types: heartbeats, supervisor state, status.

Producers/consumers live in ``repro.service`` — ``heartbeat.py``
(per-worker beat files), ``supervisor.py`` (``supervisor.json``) and
``status.py`` (the ``STATUS_VERSION=1`` snapshot behind
``repro-service queue-status --json``).  The status snapshot embeds
*annotated* copies of the heartbeat and supervisor records (liveness
verdict + age), so those sections get their own nested types here
rather than reusing the raw writer types.
"""

from dataclasses import dataclass

from .base import (
    Message,
    dict_of,
    enum,
    is_bool,
    is_int,
    is_number,
    is_str,
    list_of,
    nested,
    nullable,
    register,
)


@register
@dataclass
class HeartbeatV1(Message):
    """One worker's beat file, rewritten atomically every interval.

    ``state`` gains a reader-side pseudo-state ``unreadable`` in the
    status snapshot (see :class:`StatusWorkerV1`) but the writer only
    ever produces the three real states.
    """

    TYPE_NAME = "service.heartbeat"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = {
        "worker": is_str,
        "pid": is_int,
        "host": is_str,
        "state": enum("idle", "running", "exited"),
        "queue": nullable(is_str),
        "key": nullable(is_str),
        "tasks_done": is_int,
        "interval": is_number,
        "started_at": is_number,
        "beat_at": is_number,
    }

    worker: str
    pid: int
    host: str
    state: str
    queue: object
    key: object
    tasks_done: int
    interval: float
    started_at: float
    beat_at: float


@dataclass
class SupervisorWorkerV1(Message):
    """One supervised slot inside ``supervisor.json`` (embedded only)."""

    TYPE_NAME = "service.supervisor_worker"
    VERSION = 1
    VERSION_FIELD = None
    CHECKS = {
        "slot": is_str,
        "worker": is_str,
        "pid": nullable(is_int),
        "alive": is_bool,
        "restarts": is_int,
        "spawned_at": nullable(is_number),
    }

    slot: str
    worker: str
    pid: object
    alive: bool
    restarts: int
    spawned_at: object


@register
@dataclass
class SupervisorStateV1(Message):
    """The fleet supervisor's own state file (``supervisor.json``)."""

    TYPE_NAME = "service.supervisor_state"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = {
        "pid": is_int,
        "host": is_str,
        "status": enum("running", "stopped"),
        # null until the supervisor's pool actually starts (a patrol
        # pass on an unstarted supervisor still publishes state).
        "started_at": nullable(is_number),
        "updated_at": is_number,
        "poll": is_number,
        "queues": nullable(list_of(is_str)),
        "retried_total": is_int,
        "quarantined_total": is_int,
        "restarts_total": is_int,
        "workers": list_of(nested(SupervisorWorkerV1)),
    }

    pid: int
    host: str
    status: str
    started_at: float
    updated_at: float
    poll: float
    queues: list
    retried_total: int
    quarantined_total: int
    restarts_total: int
    workers: list


@dataclass
class StatusWorkerV1(Message):
    """A heartbeat as it appears in the status snapshot (embedded only).

    The snapshot annotates each heartbeat with the reader's liveness
    verdict and age; fields a torn/unreadable beat file cannot supply
    are nullable and the ``unreadable`` pseudo-state marks the
    placeholder the reader synthesizes for such files.
    """

    TYPE_NAME = "service.status_worker"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = {
        "worker": is_str,
        "pid": nullable(is_int),
        "host": nullable(is_str),
        "state": enum("idle", "running", "exited", "unreadable"),
        "queue": nullable(is_str),
        "key": nullable(is_str),
        "tasks_done": is_int,
        "interval": nullable(is_number),
        "started_at": nullable(is_number),
        "beat_at": nullable(is_number),
        "liveness": enum("alive", "stale", "dead", "exited"),
        "age_seconds": nullable(is_number),
    }

    worker: str
    pid: object
    host: object
    state: str
    queue: object
    key: object
    tasks_done: int
    interval: object
    started_at: object
    beat_at: object
    liveness: str
    age_seconds: object


@dataclass
class QueueStatusV1(Message):
    """One queue's section of the status snapshot (embedded only)."""

    TYPE_NAME = "service.queue_status"
    VERSION = 1
    VERSION_FIELD = None
    CHECKS = {
        "name": is_str,
        "root": is_str,
        "lease_timeout": is_number,
        "max_attempts": is_int,
        "counts": dict_of(is_int),
        "total": is_int,
        "remaining": is_int,
        "throughput_per_s": is_number,
        "eta_seconds": nullable(is_number),
        "leased_to": list_of(is_str),
    }

    name: str
    root: str
    lease_timeout: float
    max_attempts: int
    counts: dict
    total: int
    remaining: int
    throughput_per_s: float
    eta_seconds: object
    leased_to: list


@dataclass
class SupervisorStatusV1(Message):
    """The supervisor section of the status snapshot (embedded only)."""

    TYPE_NAME = "service.supervisor_status"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = dict(
        SupervisorStateV1.CHECKS,
        liveness=enum("alive", "dead", "stopped"),
        age_seconds=is_number,
    )

    pid: int
    host: str
    status: str
    started_at: float
    updated_at: float
    poll: float
    queues: list
    retried_total: int
    quarantined_total: int
    restarts_total: int
    workers: list
    liveness: str
    age_seconds: float


@register
@dataclass
class StatusSnapshotV1(Message):
    """The full ``STATUS_VERSION=1`` document (``queue-status --json``)."""

    TYPE_NAME = "service.status"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = {
        "generated_at": is_number,
        "cache_dir": is_str,
        "supervisor": nullable(nested(SupervisorStatusV1)),
        "workers": list_of(nested(StatusWorkerV1)),
        "queues": list_of(nested(QueueStatusV1)),
        "totals": dict_of(is_int),
    }

    generated_at: float
    cache_dir: str
    supervisor: object
    workers: list
    queues: list
    totals: dict
