"""The typed message kernel: validated, versioned on-disk records.

Every record the fleet persists — queue journal entries, streaming
shard records, worker heartbeats, status snapshots, bench results —
crosses a process (often a machine) boundary as JSON.  Before this
layer each was an ad-hoc dict whose shape was enforced by whatever
code read it next; a malformed or future-versioned record surfaced as
a ``KeyError`` deep inside a worker.  This module makes the shape a
contract:

* a **message type** is a small dataclass with a ``TYPE_NAME``, a
  ``VERSION`` and one :class:`Check` per field, in canonical
  serialization order — ``to_dict`` / ``from_dict`` round-trip the
  exact on-disk bytes (pinned by the golden vectors under
  ``tests/messages/vectors/``);
* parsing is **strict at the edge**: unknown fields, missing fields,
  wrong-typed values and unreadable versions raise a typed
  :class:`MessageError` subclass *where the record enters the
  process*, never later;
* versions are explicit: the :func:`parse` entry point dispatches on
  the record's version field and walks older messages forward through
  ``upgrade()`` hooks, and refuses future versions loudly — a v1 queue
  entry is upgraded, a v3 entry is an error, neither is silently
  dropped.

The registry also exposes :func:`schema_fingerprint`, a stable hash of
a type's full (recursive) field spec; the vectors manifest records it
so CI fails whenever a schema changes without regenerated vectors.
"""

import dataclasses
import hashlib
import json


class MessageError(ValueError):
    """Base of every typed message-layer failure."""


class UnknownTypeError(MessageError):
    """No message type registered under that name."""


class VersionError(MessageError):
    """A record's version is not readable by this build."""


class UpgradeError(VersionError):
    """An old-version message has no (working) upgrade path."""


class SchemaError(MessageError):
    """A payload's shape violates its type's schema."""


class UnknownFieldError(SchemaError):
    """A payload carries fields the schema does not know."""


class MissingFieldError(SchemaError):
    """A payload lacks a required field."""


class FieldTypeError(SchemaError):
    """A field's value has the wrong JSON type or domain."""


_MISSING = object()


# ----------------------------------------------------------------------
# Field checks
# ----------------------------------------------------------------------
class Check:
    """Validates one field's JSON value and knows its own spec.

    ``validate`` accepts the *native* form (nested fields hold message
    instances), ``load`` converts the *wire* form (nested fields are
    dicts) and ``dump`` converts back; ``describe`` renders the spec
    the schema fingerprint hashes.
    """

    def __init__(self, spec, fn):
        self._spec = spec
        self.fn = fn

    def describe(self):
        return self._spec

    def _fail(self, value, where):
        shown = repr(value)
        if len(shown) > 120:
            shown = shown[:117] + "..."
        raise FieldTypeError(
            f"{where}: expected {json.dumps(self.describe())}, got {shown}"
        )

    def validate(self, value, where):
        if not self.fn(value):
            self._fail(value, where)

    def load(self, value, where):
        self.validate(value, where)
        return value

    def dump(self, value):
        return value


def _type_check(spec, *types, forbid_bool=False):
    def fn(value):
        if forbid_bool and isinstance(value, bool):
            return False
        return isinstance(value, types)

    return Check(spec, fn)


is_str = _type_check("str", str)
is_bool = _type_check("bool", bool)
is_int = _type_check("int", int, forbid_bool=True)
#: ints are acceptable wherever a number is (JSON has one number type).
is_number = _type_check("number", int, float, forbid_bool=True)
#: A free-form JSON object — for payloads owned by another schema
#: (e.g. the TrainConfig dict inside a journal entry).
is_object = _type_check("object", dict)


def enum(*values):
    """Membership in a fixed value set (the state-machine fields)."""
    return Check(["enum", sorted(values)], lambda v: v in values)


class Nullable(Check):
    """``null`` or whatever the inner check accepts."""

    def __init__(self, inner):
        self.inner = inner

    def describe(self):
        return ["nullable", self.inner.describe()]

    def validate(self, value, where):
        if value is not None:
            self.inner.validate(value, where)

    def load(self, value, where):
        return None if value is None else self.inner.load(value, where)

    def dump(self, value):
        return None if value is None else self.inner.dump(value)


class ListOf(Check):
    def __init__(self, item):
        self.item = item

    def describe(self):
        return ["list", self.item.describe()]

    def validate(self, value, where):
        if not isinstance(value, list):
            self._fail(value, where)
        for index, item in enumerate(value):
            self.item.validate(item, f"{where}[{index}]")

    def load(self, value, where):
        if not isinstance(value, list):
            self._fail(value, where)
        return [self.item.load(item, f"{where}[{index}]") for index, item in enumerate(value)]

    def dump(self, value):
        return [self.item.dump(item) for item in value]


class DictOf(Check):
    """A string-keyed mapping with uniformly checked values."""

    def __init__(self, value_check):
        self.value_check = value_check

    def describe(self):
        return ["dict", self.value_check.describe()]

    def validate(self, value, where):
        if not isinstance(value, dict) or not all(isinstance(k, str) for k in value):
            self._fail(value, where)
        for key, item in value.items():
            self.value_check.validate(item, f"{where}[{key!r}]")

    def load(self, value, where):
        self.validate(value, where)
        return dict(value)

    def dump(self, value):
        return {key: self.value_check.dump(item) for key, item in value.items()}


class NestedMessage(Check):
    """An embedded message type (validated recursively)."""

    def __init__(self, cls):
        self.cls = cls

    def describe(self):
        return ["message", schema(self.cls)]

    def validate(self, value, where):
        if not isinstance(value, self.cls):
            raise FieldTypeError(
                f"{where}: expected a {self.cls.__name__}, got {type(value).__name__}"
            )

    def load(self, value, where):
        if not isinstance(value, dict):
            self._fail(value, where)
        return self.cls.from_dict(value)

    def dump(self, value):
        return value.to_dict()


def nullable(inner):
    return Nullable(inner)


def list_of(item):
    return ListOf(item)


def dict_of(value_check):
    return DictOf(value_check)


def nested(cls):
    return NestedMessage(cls)


# ----------------------------------------------------------------------
# Message base
# ----------------------------------------------------------------------
class Message:
    """Base class for one validated record shape at one version.

    Subclasses are ``@dataclass``\\ es whose field order *is* the
    canonical serialization order, with one entry per field in
    ``CHECKS``.  ``VERSION_FIELD`` names the envelope key carrying the
    version on disk (``None`` for types whose records carry no version
    key — their version is implicit and their schema change means a
    new type name or an added version field).  Fields listed in
    ``OMIT_IF_MISSING`` may be absent from the wire form and serialize
    away when ``None`` — for records whose producers historically
    wrote optional keys only when present.
    """

    TYPE_NAME = None
    VERSION = 1
    VERSION_FIELD = None
    OMIT_IF_MISSING = ()
    CHECKS = {}

    def __post_init__(self):
        where = f"{self.TYPE_NAME} v{self.VERSION}"
        for field in dataclasses.fields(self):
            self.CHECKS[field.name].validate(
                getattr(self, field.name), f"{where}.{field.name}"
            )

    @classmethod
    def from_dict(cls, payload):
        """Parse the wire form strictly; raises a :class:`MessageError`."""
        where = f"{cls.TYPE_NAME} v{cls.VERSION}"
        if not isinstance(payload, dict):
            raise SchemaError(
                f"{where}: payload must be an object, got {type(payload).__name__}"
            )
        data = dict(payload)
        if cls.VERSION_FIELD is not None:
            version = data.pop(cls.VERSION_FIELD, _MISSING)
            if version is _MISSING:
                raise MissingFieldError(f"{where}: missing {cls.VERSION_FIELD!r} field")
            if version != cls.VERSION:
                raise VersionError(
                    f"{where}: cannot parse {cls.VERSION_FIELD}={version!r}"
                )
        names = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(data) - names)
        if unknown:
            raise UnknownFieldError(f"{where}: unknown field(s) {unknown}")
        kwargs = {}
        for field in dataclasses.fields(cls):
            if field.name not in data:
                if field.name in cls.OMIT_IF_MISSING:
                    kwargs[field.name] = None
                    continue
                raise MissingFieldError(f"{where}: missing required field {field.name!r}")
            kwargs[field.name] = cls.CHECKS[field.name].load(
                data[field.name], f"{where}.{field.name}"
            )
        return cls(**kwargs)

    def to_dict(self):
        """The canonical wire form — key order matches the producers'."""
        out = {}
        if self.VERSION_FIELD is not None:
            out[self.VERSION_FIELD] = self.VERSION
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if field.name in self.OMIT_IF_MISSING and value is None:
                continue
            out[field.name] = self.CHECKS[field.name].dump(value)
        return out

    def upgrade(self):
        """Return the same record as the next schema version.

        Non-latest versions override this; the default refusal turns a
        missing hop in the chain into a typed error instead of a
        misread.
        """
        raise UpgradeError(
            f"{self.TYPE_NAME} v{self.VERSION} has no upgrade path"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY = {}


def register(cls):
    """Class decorator adding one ``(TYPE_NAME, VERSION)`` to the registry.

    Only *top-level* record families register; embedded section types
    (e.g. the per-queue section of a status snapshot) stay unregistered
    but still contribute to their parent's schema fingerprint.
    """
    key = (cls.TYPE_NAME, cls.VERSION)
    if key in _REGISTRY:
        raise ValueError(f"duplicate message registration: {key}")
    _REGISTRY[key] = cls
    return cls


def registered_types():
    """Every registered message class, ordered by (name, version)."""
    return [cls for _key, cls in sorted(_REGISTRY.items(), key=lambda kv: kv[0])]


def latest(type_name):
    """The newest registered class for ``type_name``."""
    versions = [v for (name, v) in _REGISTRY if name == type_name]
    if not versions:
        raise UnknownTypeError(f"no message type registered as {type_name!r}")
    return _REGISTRY[(type_name, max(versions))]


def parse(type_name, payload):
    """Parse ``payload`` as ``type_name``, upgrading old versions.

    The single read-boundary entry point: dispatches on the payload's
    version field, parses strictly with the matching class, then walks
    ``upgrade()`` hooks until the latest version.  Unknown and future
    versions raise :class:`VersionError` — a record is never silently
    skipped or misread.
    """
    latest_cls = latest(type_name)
    if not isinstance(payload, dict):
        raise SchemaError(
            f"{type_name}: payload must be an object, got {type(payload).__name__}"
        )
    if latest_cls.VERSION_FIELD is None:
        version = latest_cls.VERSION
    else:
        version = payload.get(latest_cls.VERSION_FIELD, _MISSING)
        if version is _MISSING:
            raise MissingFieldError(
                f"{type_name}: missing {latest_cls.VERSION_FIELD!r} field"
            )
    cls = _REGISTRY.get((type_name, version))
    if cls is None:
        known = sorted(v for (name, v) in _REGISTRY if name == type_name)
        raise VersionError(
            f"{type_name}: version {version!r} is not readable by this build "
            f"(knows {known})"
        )
    message = cls.from_dict(payload)
    while message.VERSION < latest_cls.VERSION:
        upgraded = message.upgrade()
        if not isinstance(upgraded, Message) or upgraded.VERSION <= message.VERSION:
            raise UpgradeError(
                f"{type_name} v{message.VERSION}: upgrade() did not advance the version"
            )
        message = upgraded
    return message


def schema(cls):
    """The full recursive field spec of a message class (JSON-able)."""
    return {
        "type": cls.TYPE_NAME,
        "version": cls.VERSION,
        "version_field": cls.VERSION_FIELD,
        "omitted_when_null": sorted(cls.OMIT_IF_MISSING),
        "fields": [
            [field.name, cls.CHECKS[field.name].describe()]
            for field in dataclasses.fields(cls)
        ],
    }


def schema_fingerprint(cls):
    """Stable hash of :func:`schema`; pinned by the vectors manifest."""
    return hashlib.sha256(json.dumps(schema(cls), sort_keys=True).encode()).hexdigest()
