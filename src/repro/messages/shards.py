"""Streaming shard-staging record type.

Produced/consumed by ``repro.data.streaming`` — the per-shard journal
that makes shard writes resumable (``pending -> writing -> done``).
"""

from dataclasses import dataclass

from .base import Message, enum, is_int, is_number, is_str, nullable, register


@register
@dataclass
class ShardRecordV1(Message):
    """One shard's staging state in the streaming-writer journal.

    ``start``/``stop`` (the example range covered by the shard) are
    only written for per-shard records, so both are omit-if-missing:
    split-level records lack them and must still parse (the
    ``v1split`` golden vector pins this).
    """

    TYPE_NAME = "data.shard_record"
    VERSION = 1
    VERSION_FIELD = None
    OMIT_IF_MISSING = ("start", "stop")
    CHECKS = {
        "shard": is_str,
        "status": enum("pending", "writing", "done"),
        "updated_at": is_number,
        "pid": is_int,
        "split": is_str,
        "index": is_int,
        "start": nullable(is_int),
        "stop": nullable(is_int),
    }

    shard: str
    status: str
    updated_at: float
    pid: int
    split: str
    index: int
    start: object = None
    stop: object = None
