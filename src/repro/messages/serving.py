"""Serving record types: artifact manifests, batch journal, server stats.

Producers/consumers live in ``repro.serving`` — ``artifact.py`` writes
``manifest.json`` next to ``weights.npz`` inside each content-addressed
artifact directory, and ``server.py`` writes the batch journal plus the
atomically-rewritten ``stats.json`` snapshot.  Like the queue module,
this one deliberately does not import ``repro.serving`` (serving
imports *us*).
"""

from dataclasses import dataclass

from .base import (
    Message,
    dict_of,
    enum,
    is_bool,
    is_int,
    is_number,
    is_str,
    list_of,
    nested,
    nullable,
    register,
)


@dataclass
class ArtifactModelV1(Message):
    """The architecture section of a manifest (embedded only).

    Exactly the ``create_model`` arguments needed to rebuild the module
    tree before ``load_state_dict`` restores the published weights.
    """

    TYPE_NAME = "serving.artifact_model"
    VERSION = 1
    VERSION_FIELD = None
    CHECKS = {
        "name": is_str,
        "num_classes": is_int,
        "in_channels": is_int,
        "scale": is_number,
        "image_size": nullable(is_int),
    }

    name: str
    num_classes: int
    in_channels: int
    scale: float
    image_size: object


@dataclass
class WeightQuantV1(Message):
    """The weight-quantization section of a manifest (embedded only).

    ``uniform`` carries one ``bits`` value for every layer; ``mixed``
    carries the per-layer ``assignment`` instead (``bits`` is null).
    Weights are stored post-quantization, so this section is
    provenance, not a transform to re-apply on load.
    """

    TYPE_NAME = "serving.weight_quant"
    VERSION = 1
    VERSION_FIELD = None
    CHECKS = {
        "mode": enum("uniform", "mixed"),
        "bits": nullable(is_int),
        "symmetric": is_bool,
        "per_channel": is_bool,
        "assignment": nullable(dict_of(is_int)),
    }

    mode: str
    bits: object
    symmetric: bool
    per_channel: bool
    assignment: object


@dataclass
class ActivationQuantV1(Message):
    """The activation-quantization section of a manifest (embedded only).

    ``lows``/``highs`` are the frozen calibration ranges, one per
    quantizer in the deterministic ``insert_activation_quantizers``
    wrap order — the loader re-wraps a rebuilt model and restores them
    verbatim, so no calibration data is needed at serve time.
    """

    TYPE_NAME = "serving.activation_quant"
    VERSION = 1
    VERSION_FIELD = None
    CHECKS = {
        "bits": is_int,
        "symmetric": is_bool,
        "lows": list_of(is_number),
        "highs": list_of(is_number),
    }

    bits: int
    symmetric: bool
    lows: list
    highs: list


@register
@dataclass
class ArtifactManifestV1(Message):
    """``manifest.json`` inside a content-addressed model artifact.

    ``key`` is the content hash (architecture + transforms + weight
    bytes), so re-publishing identical content is a cache hit; the
    manifest is also the loader's recipe: rebuild ``model``, fold BN if
    ``bn_folded``, load ``weights.npz``, re-wrap activations.
    """

    TYPE_NAME = "serving.artifact_manifest"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = {
        "key": is_str,
        "created_at": is_number,
        "source": nullable(is_str),
        "model": nested(ArtifactModelV1),
        "dtype": is_str,
        "bn_folded": is_bool,
        "weight_quant": nullable(nested(WeightQuantV1)),
        "activation_quant": nullable(nested(ActivationQuantV1)),
        "params": is_int,
        "weights_sha256": is_str,
    }

    key: str
    created_at: float
    source: object
    model: object
    dtype: str
    bn_folded: bool
    weight_quant: object
    activation_quant: object
    params: int
    weights_sha256: str


@register
@dataclass
class BatchRecordV1(Message):
    """One micro-batch's lifecycle record in the serving batch journal.

    Same lease discipline as ``queue.journal_entry``: claim moves
    ``pending`` → ``leased`` with an expiry, a SIGKILLed worker's batch
    becomes claimable again once the lease lapses, and ``resolve`` only
    lands if the worker still holds the lease.
    """

    TYPE_NAME = "serving.batch_record"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = {
        "key": is_str,
        "status": enum("pending", "leased", "done", "error"),
        "requests": list_of(is_str),
        "attempts": is_int,
        "worker": nullable(is_str),
        "leased_at": nullable(is_number),
        "lease_expires": nullable(is_number),
        "created_at": is_number,
        "finished_at": nullable(is_number),
        "error": nullable(is_str),
    }

    key: str
    status: str
    requests: list
    attempts: int
    worker: object
    leased_at: object
    lease_expires: object
    created_at: float
    finished_at: object
    error: object


@register
@dataclass
class ServerStatsV1(Message):
    """The server's ``stats.json`` snapshot, rewritten atomically.

    ``re_served_total`` counts lease-expiry re-serves (attempts beyond
    the first on done batches) — the externally visible cost of the
    failure model.  ``queue_depth`` is admitted-but-unflushed requests.
    """

    TYPE_NAME = "serving.server_stats"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = {
        "server": is_str,
        "artifact": is_str,
        "pid": is_int,
        "host": is_str,
        "started_at": is_number,
        "updated_at": is_number,
        "workers": is_int,
        "max_batch": is_int,
        "max_delay_ms": is_number,
        "requests_total": is_int,
        "batches_total": is_int,
        "served_total": is_int,
        "re_served_total": is_int,
        "queue_depth": is_int,
    }

    server: str
    artifact: str
    pid: int
    host: str
    started_at: float
    updated_at: float
    workers: int
    max_batch: int
    max_delay_ms: float
    requests_total: int
    batches_total: int
    served_total: int
    re_served_total: int
    queue_depth: int
