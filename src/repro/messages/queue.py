"""Queue record types: journal entries and embedded run records.

Producers/consumers live in ``repro.experiments.scheduler`` (the
``TaskQueue`` journal) and ``repro.experiments.reporting`` (the run
record embedded in resolved entries).  The ``config`` payload is a
free-form object owned by ``TrainConfig`` — this module deliberately
does not import ``repro.experiments`` (the scheduler imports *us*).
"""

import dataclasses
from dataclasses import dataclass

from .base import (
    Message,
    enum,
    is_bool,
    is_int,
    is_number,
    is_object,
    is_str,
    nested,
    nullable,
    register,
)


@register
@dataclass
class RunRecordV1(Message):
    """The result payload embedded in ``done``/``error`` journal entries.

    Written by ``reporting.record_to_dict(record, include_config=False)``
    and by the scheduler's lease-expiry quarantine path; carries no
    version key on disk, so the version is implicit.
    """

    TYPE_NAME = "queue.run_record"
    VERSION = 1
    VERSION_FIELD = None
    CHECKS = {
        "key": is_str,
        "status": enum("ok", "error"),
        "from_cache": is_bool,
        "seconds": is_number,
        "train_acc": nullable(is_number),
        "test_acc": nullable(is_number),
        "error": nullable(is_str),
        "pid": is_int,
    }

    key: str
    status: str
    from_cache: bool
    seconds: float
    train_acc: object
    test_acc: object
    error: object
    pid: int


@register
@dataclass
class JournalEntryV2(Message):
    """One task's lifecycle record in the queue journal (current).

    v2 added the ``quarantined`` terminal state for tasks whose leases
    expired ``max_attempts`` times.  Field order matches
    ``scheduler.ENTRY_FIELDS`` and is pinned by the fresh-entry golden
    hash in ``tests/test_golden.py``.
    """

    TYPE_NAME = "queue.journal_entry"
    VERSION = 2
    VERSION_FIELD = "version"
    CHECKS = {
        "key": is_str,
        "config": is_object,
        "force": is_bool,
        "status": enum("pending", "leased", "done", "error", "quarantined"),
        "attempts": is_int,
        "worker": nullable(is_str),
        "leased_at": nullable(is_number),
        "lease_expires": nullable(is_number),
        "enqueued_at": is_number,
        "started_at": nullable(is_number),
        "finished_at": nullable(is_number),
        "record": nullable(nested(RunRecordV1)),
    }

    key: str
    config: dict
    force: bool
    status: str
    attempts: int
    worker: object
    leased_at: object
    lease_expires: object
    enqueued_at: float
    started_at: object
    finished_at: object
    record: object


@register
@dataclass
class JournalEntryV1(Message):
    """The pre-quarantine journal entry (same fields, 4-state enum)."""

    TYPE_NAME = "queue.journal_entry"
    VERSION = 1
    VERSION_FIELD = "version"
    CHECKS = dict(
        JournalEntryV2.CHECKS,
        status=enum("pending", "leased", "done", "error"),
    )

    key: str
    config: dict
    force: bool
    status: str
    attempts: int
    worker: object
    leased_at: object
    lease_expires: object
    enqueued_at: float
    started_at: object
    finished_at: object
    record: object

    def upgrade(self):
        # Every v1 state is a valid v2 state; the payload carries over.
        return JournalEntryV2(
            **{f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
        )
