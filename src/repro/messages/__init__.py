"""Typed, versioned message layer for every on-disk record.

See :mod:`repro.messages.base` for the model.  Import surface:

* errors — :class:`MessageError` and its typed subclasses;
* the :func:`parse` read boundary and the :func:`register` decorator;
* the concrete record types for the five on-disk families (queue
  journal, shard staging, heartbeat, status snapshot, bench result);
* introspection — :func:`registered_types`, :func:`schema`,
  :func:`schema_fingerprint` (used by the vectors manifest check).
"""

from .base import (
    Check,
    FieldTypeError,
    Message,
    MessageError,
    MissingFieldError,
    SchemaError,
    UnknownFieldError,
    UnknownTypeError,
    UpgradeError,
    VersionError,
    dict_of,
    enum,
    is_bool,
    is_int,
    is_number,
    is_object,
    is_str,
    latest,
    list_of,
    nested,
    nullable,
    parse,
    register,
    registered_types,
    schema,
    schema_fingerprint,
)
from .bench import StepCostResultV1, StepCostRunV1
from .queue import JournalEntryV1, JournalEntryV2, RunRecordV1
from .serving import (
    ActivationQuantV1,
    ArtifactManifestV1,
    ArtifactModelV1,
    BatchRecordV1,
    ServerStatsV1,
    WeightQuantV1,
)
from .service import (
    HeartbeatV1,
    QueueStatusV1,
    StatusSnapshotV1,
    StatusWorkerV1,
    SupervisorStateV1,
    SupervisorStatusV1,
    SupervisorWorkerV1,
)
from .shards import ShardRecordV1

__all__ = [
    "ActivationQuantV1",
    "ArtifactManifestV1",
    "ArtifactModelV1",
    "BatchRecordV1",
    "Check",
    "FieldTypeError",
    "HeartbeatV1",
    "JournalEntryV1",
    "JournalEntryV2",
    "Message",
    "MessageError",
    "MissingFieldError",
    "QueueStatusV1",
    "RunRecordV1",
    "SchemaError",
    "ServerStatsV1",
    "ShardRecordV1",
    "StatusSnapshotV1",
    "StatusWorkerV1",
    "StepCostResultV1",
    "StepCostRunV1",
    "SupervisorStateV1",
    "SupervisorStatusV1",
    "SupervisorWorkerV1",
    "UnknownFieldError",
    "UnknownTypeError",
    "UpgradeError",
    "VersionError",
    "WeightQuantV1",
    "dict_of",
    "enum",
    "is_bool",
    "is_int",
    "is_number",
    "is_object",
    "is_str",
    "latest",
    "list_of",
    "nested",
    "nullable",
    "parse",
    "register",
    "registered_types",
    "schema",
    "schema_fingerprint",
]
