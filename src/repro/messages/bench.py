"""Bench result record type (``benchmarks/bench_step_cost.py``).

Covers both the ``--json`` report and the checked-in regression
baseline (``benchmarks/baselines/step_cost.json``) — same shape.
"""

from dataclasses import dataclass

from .base import (
    Message,
    dict_of,
    is_bool,
    is_int,
    is_number,
    is_str,
    list_of,
    nested,
    nullable,
    register,
)


@dataclass
class StepCostRunV1(Message):
    """One measured configuration inside a step-cost result (embedded).

    The ``alloc_*`` fields only exist when the bench ran with
    allocation tracking, so they are omit-if-missing.
    """

    TYPE_NAME = "bench.step_cost_run"
    VERSION = 1
    VERSION_FIELD = None
    OMIT_IF_MISSING = ("alloc_peak_bytes", "alloc_net_blocks", "alloc_net_bytes")
    CHECKS = {
        "method": is_str,
        "dtype": is_str,
        "fused": is_bool,
        "arena": is_bool,
        "seconds_per_step": is_number,
        "steps_per_sec": is_number,
        "alloc_peak_bytes": nullable(is_int),
        "alloc_net_blocks": nullable(is_int),
        "alloc_net_bytes": nullable(is_int),
    }

    method: str
    dtype: str
    fused: bool
    arena: bool
    seconds_per_step: float
    steps_per_sec: float
    alloc_peak_bytes: object = None
    alloc_net_blocks: object = None
    alloc_net_bytes: object = None


@register
@dataclass
class StepCostResultV1(Message):
    """The full step-cost bench result / baseline document."""

    TYPE_NAME = "bench.step_cost"
    VERSION = 1
    VERSION_FIELD = None
    CHECKS = {
        "steps": is_int,
        "runs": list_of(nested(StepCostRunV1)),
        "speedups": dict_of(is_number),
    }

    steps: int
    runs: list
    speedups: dict
