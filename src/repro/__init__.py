"""HERO reproduction — Hessian-Enhanced Robust Optimization (DAC 2022).

A full from-scratch reproduction of Yang et al., "HERO:
Hessian-Enhanced Robust Optimization for Unifying and Improving
Generalization and Quantization Performance", built on a numpy autograd
engine with double-backprop support.

Subpackages
-----------
``repro.tensor``      autograd engine (Tensor, double backprop)
``repro.nn``          layers, losses, initializers
``repro.models``      ResNet / MobileNetV2 / VGG-BN / MLP zoo
``repro.data``        synthetic datasets, loaders, augmentation, label noise
``repro.optim``       SGD + schedulers
``repro.core``        HERO and baseline trainers (the paper's methods)
``repro.quant``       linear uniform post-training quantization
``repro.hessian``     HVPs, eigenvalues, ||Hz|| metric
``repro.landscape``   loss-surface visualization
``repro.experiments`` harness regenerating every table and figure
``repro.serving``     model artifacts + micro-batched inference server
"""

from . import tensor, nn, models, data, optim, core, quant, hessian, landscape
from .tensor import Tensor, no_grad, default_dtype, set_default_dtype, dtype_context
from .core import make_trainer, available_methods

__version__ = "1.0.0"

__all__ = [
    "tensor",
    "nn",
    "models",
    "data",
    "optim",
    "core",
    "quant",
    "hessian",
    "landscape",
    "Tensor",
    "no_grad",
    "default_dtype",
    "set_default_dtype",
    "dtype_context",
    "make_trainer",
    "available_methods",
    "__version__",
]
