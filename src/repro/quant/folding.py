"""BatchNorm folding — the standard pre-quantization deployment step.

At inference BatchNorm is an affine transform per channel; folding it
into the preceding convolution's weights and bias produces a network
that is (i) mathematically identical in eval mode and (ii) the form
deployment toolchains actually quantize.  The paper quantizes conv
weights with BN kept separate; folding is provided so users can study
both deployment conventions (the folded model's weight distribution
differs, which changes PTQ behaviour — see the tests).
"""

import copy

import numpy as np

from .. import nn


def fold_conv_bn(conv, bn):
    """Return a new Conv2d equivalent to ``bn(conv(x))`` in eval mode.

    ``W' = W * gamma / sqrt(var + eps)`` (per output channel),
    ``b' = (b - mean) * gamma / sqrt(var + eps) + beta``.
    """
    if conv.out_channels != bn.num_features:
        raise ValueError(
            f"conv out_channels {conv.out_channels} != bn features {bn.num_features}"
        )
    scale = 1.0 / np.sqrt(bn.running_var + bn.eps)
    if bn.affine:
        scale = scale * bn.weight.data
        shift = bn.bias.data
    else:
        shift = np.zeros(bn.num_features)

    folded = nn.Conv2d(
        conv.in_channels,
        conv.out_channels,
        conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        dilation=conv.dilation,
        groups=conv.groups,
        bias=True,
    )
    folded.weight.data = conv.weight.data * scale[:, None, None, None]
    base_bias = conv.bias.data if conv.bias is not None else np.zeros(conv.out_channels)
    folded.bias.data = (base_bias - bn.running_mean) * scale + shift
    return folded


def fold_batchnorms(model):
    """Fold every ``Conv2d -> BatchNorm2d`` pair inside Sequential containers.

    Returns a deep-copied model with each such pair replaced by a single
    folded Conv2d followed by ``nn.Identity()``.  Pairs must be adjacent
    children of the same ``Sequential`` (the layout all models in
    ``repro.models`` use for their conv stacks); other BN placements are
    left untouched.  The model should be in eval mode downstream — the
    folded convs bake in the *running* statistics.
    """
    folded_model = copy.deepcopy(model)
    count = _fold_in_place(folded_model)
    return folded_model, count


def _fold_in_place(module):
    count = 0
    for child in list(module._modules.values()):
        count += _fold_in_place(child)
    if isinstance(module, nn.Sequential):
        names = list(module._modules)
        for i in range(len(names) - 1):
            first = module._modules[names[i]]
            second = module._modules[names[i + 1]]
            if isinstance(first, nn.Conv2d) and isinstance(second, nn.BatchNorm2d):
                folded = fold_conv_bn(first, second)
                setattr(module, names[i], folded)
                setattr(module, names[i + 1], nn.Identity())
                count += 1
    else:
        # Fold conv/bn attribute pairs by naming convention (convN/bnN),
        # which covers the model zoo's non-Sequential blocks.
        names = list(module._modules)
        for name in names:
            if not name.startswith("conv"):
                continue
            suffix = name[4:]
            bn_name = f"bn{suffix}"
            conv = module._modules.get(name)
            bn = module._modules.get(bn_name)
            if isinstance(conv, nn.Conv2d) and isinstance(bn, nn.BatchNorm2d):
                setattr(module, name, fold_conv_bn(conv, bn))
                setattr(module, bn_name, nn.Identity())
                count += 1
    return count
