"""Per-layer quantization sensitivity and greedy mixed precision.

The paper's motivation (Sec. 1/2.2) is deployment where precision must
change on the fly.  A natural downstream tool on top of a HERO-trained
model: measure how sensitive each layer is to quantization, then assign
the lowest per-layer precisions that keep accuracy within a budget —
no finetuning, exactly the post-training regime HERO targets.
"""

import copy

from .quantizer import QuantScheme, quantize_array
from .ptq import _target_modules


def layer_sensitivity(model, eval_fn, bits=4, symmetric=True):
    """Accuracy when quantizing *one layer at a time* to ``bits``.

    Returns ``{layer_name: accuracy}``, plus the unquantized reference
    under the key ``"__full__"``.  Layers whose entry is far below the
    reference are the quantization bottlenecks.
    """
    reference = eval_fn(model)
    scheme = QuantScheme(bits=bits, symmetric=symmetric)
    results = {"__full__": reference}
    for name, _module in _target_modules(model):
        clone = copy.deepcopy(model)
        target = dict(_target_modules(clone))[name]
        target.weight.data, _info = quantize_array(target.weight.data, scheme)
        results[name] = eval_fn(clone)
    return results


def apply_mixed_precision(model, assignment, symmetric=True):
    """Quantize a copy of ``model`` with per-layer bit widths.

    ``assignment`` maps layer name to bits (layers absent from the map
    stay full precision).  Returns ``(quantized_model, report)``.
    """
    clone = copy.deepcopy(model)
    report = {}
    modules = dict(_target_modules(clone))
    unknown = set(assignment) - set(modules)
    if unknown:
        raise KeyError(f"assignment names unknown layers: {sorted(unknown)}")
    for name, bits in assignment.items():
        scheme = QuantScheme(bits=bits, symmetric=symmetric)
        module = modules[name]
        module.weight.data, info = quantize_array(module.weight.data, scheme)
        report[name] = info
    return clone, report


def average_bits(model, assignment, default_bits=16):
    """Parameter-weighted mean bit width of an assignment."""
    total_params = 0
    total_bits = 0.0
    for name, module in _target_modules(model):
        count = module.weight.size
        total_params += count
        total_bits += count * assignment.get(name, default_bits)
    return total_bits / max(total_params, 1)


def greedy_mixed_precision(
    model,
    eval_fn,
    accuracy_budget=0.02,
    bit_choices=(8, 6, 5, 4, 3),
    symmetric=True,
):
    """Greedily lower each layer's precision while accuracy holds.

    Starting from the highest precision in ``bit_choices`` for every
    layer, repeatedly try the next lower precision on the layer whose
    drop costs least, accepting moves that keep accuracy within
    ``accuracy_budget`` of the full-precision reference.

    Returns ``{"assignment", "accuracy", "reference", "average_bits"}``.
    """
    bit_choices = sorted(bit_choices, reverse=True)
    reference = eval_fn(model)
    floor = reference - accuracy_budget
    names = [name for name, _m in _target_modules(model)]
    assignment = {name: bit_choices[0] for name in names}

    current_model, _ = apply_mixed_precision(model, assignment, symmetric=symmetric)
    current_acc = eval_fn(current_model)

    improved = True
    while improved:
        improved = False
        best_candidate = None
        for name in names:
            index = bit_choices.index(assignment[name])
            if index + 1 >= len(bit_choices):
                continue
            trial = dict(assignment)
            trial[name] = bit_choices[index + 1]
            trial_model, _ = apply_mixed_precision(model, trial, symmetric=symmetric)
            acc = eval_fn(trial_model)
            if acc >= floor and (best_candidate is None or acc > best_candidate[1]):
                best_candidate = (name, acc, trial)
        if best_candidate is not None:
            _name, current_acc, assignment = best_candidate
            improved = True

    return {
        "assignment": assignment,
        "accuracy": current_acc,
        "reference": reference,
        "average_bits": average_bits(model, assignment),
    }
