"""Activation (fake-)quantization — an extension beyond the paper.

The paper quantizes weights only (its Theorem 2 analyzes weight
perturbation).  Real deployments also quantize activations; this module
adds the standard machinery so the HERO-vs-SGD comparison can be run
under full weight+activation PTQ:

* :class:`ActivationObserver` — records running min/max (or absolute
  max) of a tensor stream during a calibration pass;
* :class:`FakeQuantize` — a module wrapping an observer that, once
  calibrated, rounds activations to the observed grid on forward;
* :func:`insert_activation_quantizers` — wraps the output of every
  conv/linear layer of a model copy;
* :func:`calibrate` — runs calibration batches through the wrapped
  model to freeze the ranges.

Rounding happens on the numpy values inside forward; the straight-
through behaviour (identity gradient) is obtained by adding the
detached rounding error, so the wrapped model remains trainable if a
user wants QAT-style finetuning.
"""

import copy

import numpy as np

from .. import nn
from ..tensor import Tensor
from .quantizer import QuantScheme


class ActivationObserver:
    """Running range tracker for a stream of activation tensors."""

    def __init__(self, symmetric=True, momentum=None):
        self.symmetric = symmetric
        self.momentum = momentum  # None: running min/max; else EMA
        self.low = None
        self.high = None

    def observe(self, array):
        """Fold one activation tensor into the running range."""
        low = float(np.min(array))
        high = float(np.max(array))
        if self.symmetric:
            high = max(abs(low), abs(high))
            low = -high
        if self.low is None:
            self.low, self.high = low, high
        elif self.momentum is None:
            self.low = min(self.low, low)
            self.high = max(self.high, high)
        else:
            m = self.momentum
            self.low = (1 - m) * self.low + m * low
            self.high = (1 - m) * self.high + m * high

    @property
    def calibrated(self):
        """Whether at least one batch has been observed."""
        return self.low is not None


class FakeQuantize(nn.Module):
    """Quantize-dequantize activations to ``bits`` on the observed range.

    In ``calibrating`` state the module records ranges and passes data
    through unchanged; after :meth:`freeze` it rounds every forward.
    """

    def __init__(self, bits=8, symmetric=True):
        super().__init__()
        self.scheme = QuantScheme(bits=bits, symmetric=symmetric)
        self.observer = ActivationObserver(symmetric=symmetric)
        self.calibrating = True

    def freeze(self):
        """Stop calibrating; subsequent forwards quantize."""
        if not self.observer.calibrated:
            raise RuntimeError("cannot freeze an uncalibrated FakeQuantize")
        self.calibrating = False
        return self

    def forward(self, x):
        if self.calibrating:
            self.observer.observe(x.data)
            return x
        quantized = self._quantize(x.data)
        # Straight-through: x + (q - x).detach() == q in value, identity in grad.
        return x + Tensor(quantized - x.data)

    def _quantize(self, array):
        low, high = self.observer.low, self.observer.high
        levels = self.scheme.levels
        if self.scheme.symmetric:
            steps = max(levels // 2 - 1, 1)
            delta = high / steps if high > 0 else 1.0
            codes = np.clip(np.round(array / delta), -steps, steps)
            return codes * delta
        span = high - low
        delta = span / (levels - 1) if span > 0 else 1.0
        codes = np.clip(np.round((array - low) / delta), 0, levels - 1)
        return codes * delta + low

    def __repr__(self):
        state = "calibrating" if self.calibrating else "frozen"
        return f"FakeQuantize({self.scheme.describe()}, {state})"


class _QuantizedOutput(nn.Module):
    """A layer followed by its activation fake-quantizer."""

    def __init__(self, layer, fake_quant):
        super().__init__()
        self.layer = layer
        self.fq = fake_quant

    def forward(self, x):
        return self.fq(self.layer(x))


def insert_activation_quantizers(model, bits=8, symmetric=True):
    """Wrap every Conv2d/Linear of a model copy with a FakeQuantize.

    Returns ``(wrapped_model, quantizers)`` where ``quantizers`` is the
    list of inserted :class:`FakeQuantize` modules (for freezing).
    """
    wrapped = copy.deepcopy(model)
    quantizers = []
    _wrap_in_place(wrapped, bits, symmetric, quantizers)
    if not quantizers:
        raise ValueError("model contains no Conv2d/Linear layers to wrap")
    return wrapped, quantizers


def _wrap_in_place(module, bits, symmetric, quantizers):
    for name, child in list(module._modules.items()):
        if isinstance(child, (nn.Conv2d, nn.Linear)):
            fq = FakeQuantize(bits=bits, symmetric=symmetric)
            setattr(module, name, _QuantizedOutput(child, fq))
            quantizers.append(fq)
        else:
            _wrap_in_place(child, bits, symmetric, quantizers)


def calibrate(wrapped_model, quantizers, batches):
    """Run calibration batches through the model, then freeze the ranges."""
    from ..tensor import no_grad

    wrapped_model.eval()
    with no_grad():
        for x, _y in batches:
            wrapped_model(Tensor(np.asarray(x)))
    for quantizer in quantizers:
        quantizer.freeze()
    return wrapped_model


def quantize_weights_and_activations(model, weight_bits, act_bits, batches, symmetric=True):
    """Full PTQ: weight quantization + calibrated activation quantization.

    Returns the deployable model (weights on the grid, activation
    fake-quantizers frozen).
    """
    from .ptq import quantize_model

    weight_quantized, _report = quantize_model(
        model, QuantScheme(bits=weight_bits, symmetric=symmetric)
    )
    wrapped, quantizers = insert_activation_quantizers(
        weight_quantized, bits=act_bits, symmetric=symmetric
    )
    return calibrate(wrapped, quantizers, batches)
