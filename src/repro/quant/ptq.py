"""Post-training quantization of whole models, and precision sweeps.

Matches the paper's protocol (Sec. 5.3): quantize the *weights* of
every convolutional and linear layer of a fully-trained model to a
target precision with a linear uniform quantizer — **no finetuning** —
then measure test accuracy.  Biases and BatchNorm parameters stay in
full precision (standard deployment practice: they fold into the
high-precision accumulator path).
"""

import numpy as np

from .quantizer import QuantScheme, quantize_array

#: Parameter names quantized inside Conv2d/Linear modules.
_QUANTIZED_PARAM = "weight"


def _target_modules(model):
    """Yield (name, module) for the conv/linear layers to quantize."""
    from ..nn import Conv2d, Linear

    for name, module in model.named_modules():
        if isinstance(module, (Conv2d, Linear)):
            yield name, module


def quantize_model(model, scheme, in_place=False):
    """Quantize every conv/linear weight of ``model`` under ``scheme``.

    Returns ``(quantized_model, report)``.  ``report`` maps layer name
    to the per-layer quantization info (bin width, realized max error).
    With ``in_place=False`` (default) the original model is untouched
    and a state-copied clone is returned.
    """
    import copy

    target = model if in_place else copy.deepcopy(model)
    report = {}
    for name, module in _target_modules(target):
        weight = getattr(module, _QUANTIZED_PARAM)
        w_q, info = quantize_array(weight.data, scheme)
        weight.data = w_q
        report[name or type(module).__name__] = info
    return target, report


def evaluate_quantized(model, scheme, eval_fn):
    """Quantize a copy of ``model`` and run ``eval_fn`` on it.

    ``eval_fn(model) -> float`` is typically test accuracy.
    """
    quantized, report = quantize_model(model, scheme, in_place=False)
    return eval_fn(quantized), report


def precision_sweep(model, eval_fn, bits_list=(3, 4, 5, 6, 7, 8), symmetric=True, per_channel=False):
    """Accuracy across a range of precisions — one Fig. 1 curve.

    The model is cloned **once** and each scheme's quantized weights
    are swapped into that clone from the original full-precision
    weights — one ``deepcopy`` for the whole sweep instead of one per
    precision, with results identical to quantizing a fresh copy each
    time (every scheme quantizes the same source weights).

    Returns a dict with ``bits`` (list), ``accuracy`` (list, same
    order), ``full_precision`` (unquantized score) and ``max_error``
    (worst realized weight shift per precision, the Theorem 2 bound's
    left side).
    """
    import copy

    target = copy.deepcopy(model)
    source_weights = {
        name: getattr(module, _QUANTIZED_PARAM).data.copy()
        for name, module in _target_modules(model)
    }
    target_params = [
        (name, getattr(module, _QUANTIZED_PARAM), type(module).__name__)
        for name, module in _target_modules(target)
    ]
    accuracies = []
    max_errors = []
    for bits in bits_list:
        scheme = QuantScheme(bits=bits, symmetric=symmetric, per_channel=per_channel)
        report = {}
        for name, param, fallback in target_params:
            w_q, info = quantize_array(source_weights[name], scheme)
            param.data = w_q
            report[name or fallback] = info
        accuracies.append(eval_fn(target))
        max_errors.append(max(info["max_error"] for info in report.values()))
    return {
        "bits": list(bits_list),
        "accuracy": accuracies,
        "max_error": max_errors,
        "full_precision": eval_fn(model),
    }


def weight_perturbation_norms(model, scheme):
    """``||W_q - W||`` per layer in l-inf and l2 — Theorem 2's delta.

    Useful to verify the quantization perturbation is indeed l-inf
    bounded by ``Delta/2`` (tested in the suite).
    """
    norms = {}
    for name, module in _target_modules(model):
        weight = getattr(module, _QUANTIZED_PARAM).data
        w_q, info = quantize_array(weight, scheme)
        diff = w_q - weight
        norms[name] = {
            "linf": float(np.abs(diff).max()),
            "l2": float(np.linalg.norm(diff)),
            "delta": info["delta"],
        }
    return norms
