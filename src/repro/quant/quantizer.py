"""Linear uniform weight quantization (the paper's Sec. 3.1 setting).

"The weight distribution is separated into ``2^n`` uniform-sized bins,
and each bin is rounded into an n-bit quantized value.  Suppose the
quantization bin has a width of Delta, the rounding function will
change each element of the weight by at most Delta/2."

Schemes
-------
``symmetric``
    Range ``[-max|W|, +max|W|]``, zero exactly representable; the
    common hardware-friendly choice and our default.
``asymmetric``
    Range ``[min W, max W]`` with a zero point — tighter bins for
    skewed distributions.

Granularity is ``per_tensor`` (one Delta per weight tensor — the
paper's per-layer linear uniform quantizer) or ``per_channel`` (one
Delta per output channel).
"""

from dataclasses import dataclass

import numpy as np

from ..tensor import default_dtype


def _as_float(weights):
    """Weights as a floating array: keep their precision, or apply the
    engine policy to non-float input (e.g. integer test fixtures)."""
    weights = np.asarray(weights)
    if not np.issubdtype(weights.dtype, np.floating):
        weights = weights.astype(default_dtype())
    return weights


@dataclass(frozen=True)
class QuantScheme:
    """Description of a linear uniform quantizer."""

    bits: int
    symmetric: bool = True
    per_channel: bool = False

    def __post_init__(self):
        if not 2 <= self.bits <= 16:
            raise ValueError(f"bits must be in [2, 16], got {self.bits}")

    @property
    def levels(self):
        """Number of representable values (2^bits)."""
        return 2 ** self.bits

    def describe(self):
        """Human-readable one-line description of the scheme."""
        gran = "per-channel" if self.per_channel else "per-tensor"
        kind = "symmetric" if self.symmetric else "asymmetric"
        return f"{self.bits}-bit {kind} {gran}"


def _reduce_axes(array):
    """All axes except the leading (output-channel) one."""
    return tuple(range(1, array.ndim))


def quantize_array(weights, scheme):
    """Quantize ``weights`` under ``scheme``; returns ``(w_q, info)``.

    ``info`` carries ``delta`` (bin width(s)) and ``max_error`` — the
    realized ``||W_q - W||_inf``, which Theorem 2 bounds by
    ``delta / 2``.
    """
    weights = _as_float(weights)
    if weights.size == 0:
        raise ValueError("cannot quantize an empty array")

    if scheme.per_channel and weights.ndim >= 2:
        axes = _reduce_axes(weights)
        keep = tuple([slice(None)] + [None] * (weights.ndim - 1))
        if scheme.symmetric:
            max_abs = np.abs(weights).max(axis=axes)[keep]
            w_q, delta = _symmetric(weights, max_abs, scheme.levels)
        else:
            low = weights.min(axis=axes)[keep]
            high = weights.max(axis=axes)[keep]
            w_q, delta = _asymmetric(weights, low, high, scheme.levels)
    else:
        if scheme.symmetric:
            max_abs = np.abs(weights).max()
            w_q, delta = _symmetric(weights, max_abs, scheme.levels)
        else:
            w_q, delta = _asymmetric(weights, weights.min(), weights.max(), scheme.levels)

    info = {
        "delta": delta,
        "max_error": float(np.abs(w_q - weights).max()),
        "scheme": scheme,
    }
    return w_q, info


def _symmetric(weights, max_abs, levels):
    """Symmetric uniform quantization over ``[-max_abs, +max_abs]``.

    Uses the restricted signed grid ``{-(2^{n-1}-1), ..., +(2^{n-1}-1)}``
    (one code of the full range unused — the standard hardware-friendly
    choice), so zero is exactly representable, the extreme weight maps
    to ``+-max_abs`` without clipping error, and the rounding error is
    bounded by ``delta / 2`` as Theorem 2 requires.
    """
    steps = max(levels // 2 - 1, 1)
    # guard the quotient, not the operand: a subnormal max_abs can
    # underflow to a delta of exactly 0.0 even though max_abs > 0
    delta = np.asarray(max_abs) / steps
    delta = np.where(delta > 0, delta, 1.0)
    codes = np.clip(np.round(weights / delta), -steps, steps)
    return codes * delta, delta


def _asymmetric(weights, low, high, levels):
    """Asymmetric uniform quantization over ``[low, high]``."""
    low = np.asarray(low, dtype=weights.dtype)
    high = np.asarray(high, dtype=weights.dtype)
    span = high - low
    # guard the quotient, not the span: a subnormal span underflows to
    # a delta of exactly 0.0 even though span > 0 (then codes go NaN)
    delta = span / (levels - 1)
    delta = np.where(delta > 0, delta, np.ones_like(np.asarray(delta)))
    codes = np.clip(np.round((weights - low) / delta), 0, levels - 1)
    return codes * delta + low, delta


def quantization_error(weights, scheme):
    """Convenience: the elementwise error ``W_q - W``."""
    w_q, _ = quantize_array(weights, scheme)
    return w_q - _as_float(weights)
