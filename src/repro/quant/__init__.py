"""``repro.quant`` — linear uniform post-training weight quantization."""

from .quantizer import QuantScheme, quantize_array, quantization_error
from .ptq import (
    quantize_model,
    evaluate_quantized,
    precision_sweep,
    weight_perturbation_norms,
)
from .folding import fold_conv_bn, fold_batchnorms
from .activation import (
    ActivationObserver,
    FakeQuantize,
    insert_activation_quantizers,
    calibrate,
    quantize_weights_and_activations,
)
from .sensitivity import (
    layer_sensitivity,
    apply_mixed_precision,
    average_bits,
    greedy_mixed_precision,
)

__all__ = [
    "QuantScheme",
    "quantize_array",
    "quantization_error",
    "quantize_model",
    "evaluate_quantized",
    "precision_sweep",
    "weight_perturbation_norms",
    "fold_conv_bn",
    "fold_batchnorms",
    "ActivationObserver",
    "FakeQuantize",
    "insert_activation_quantizers",
    "calibrate",
    "quantize_weights_and_activations",
    "layer_sensitivity",
    "apply_mixed_precision",
    "average_bits",
    "greedy_mixed_precision",
]
