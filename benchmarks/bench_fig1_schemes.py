"""Fig. 1 scheme-robustness bench.

Paper Sec. 5.3: "HERO also beats state-of-the-art Gradient l1 by a
large margin under all quantization schemes."  Sweeps the 4-bit
quantizer variants (symmetric/asymmetric x per-tensor/per-channel) on
the cached ResNet20/CIFAR-10 runs.
"""

import repro.experiments as ex


def test_fig1_schemes(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_fig1_schemes(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_fig1_schemes(result)
    violations = ex.check_fig1_schemes(result)
    if violations:
        text += "\n\nDeviations vs paper:\n" + "\n".join(f"  - {v}" for v in violations)
    else:
        text += "\n\nPaper claim reproduced: HERO >= GRAD-L1 under every scheme."
    emit("fig1_schemes", text)
    ex.save_json(result, f"{results_dir}/fig1_schemes.json")

    assert len(result["rows"]) == 4
    for row in result["rows"]:
        for method in ("hero", "grad_l1", "sgd"):
            assert 0.0 <= row[method] <= 1.0
    if profile != "smoke":
        wins = sum(1 for row in result["rows"] if row["hero"] >= row["grad_l1"])
        assert wins >= 3, f"HERO beats GRAD-L1 under only {wins}/4 schemes"
