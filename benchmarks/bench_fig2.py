"""Figure 2 bench: ||Hz|| across training + generalization gap.

Paper claims: the Hessian norm grows as the model overfits, HERO keeps
it lowest towards the end of training, and shows the smallest
generalization gap.
"""

import repro.experiments as ex


def test_fig2(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_fig2(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_fig2(result)
    violations = ex.check_fig2(result)
    if violations:
        text += "\n\nDeviations vs paper:\n" + "\n".join(f"  - {v}" for v in violations)
    else:
        text += "\n\nPaper shape reproduced: HERO has the lowest final ||Hz|| and gap."
    emit("fig2", text)
    ex.save_json(result, f"{results_dir}/fig2.json")

    finals = {}
    for method, series in result["series"].items():
        values = [v for v in series["hessian_norm"] if v is not None]
        assert values, f"{method}: no Hessian-norm series"
        assert all(v >= 0 for v in values)
        finals[method] = values[-1]
    # Core shape: HERO's final curvature no worse than SGD's.
    if profile != "smoke":
        assert finals["hero"] <= finals["sgd"] * 1.1
