"""Table 1 bench: test accuracy across models/datasets/methods.

Paper claim: HERO has the highest test accuracy in every row; GRAD-L1
does not consistently beat SGD.
"""

import repro.experiments as ex


def test_table1(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_table1(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_table1(result)
    violations = ex.check_table1(result)
    if violations:
        text += "\n\nOrdering deviations vs paper:\n" + "\n".join(
            f"  - {v}" for v in violations
        )
    else:
        text += "\n\nPaper ordering reproduced: HERO best in every row."
    emit("table1", text)
    ex.save_json(result, f"{results_dir}/table1.json")

    # Sanity: every cell is a valid accuracy and HERO wins a majority of rows.
    rows = result["rows"]
    for row in rows:
        for method in ("hero", "grad_l1", "sgd"):
            assert 0.0 <= row[method] <= 1.0
    if profile != "smoke":
        hero_wins = sum(
            1 for row in rows if row["hero"] >= max(row["grad_l1"], row["sgd"])
        )
        assert hero_wins >= len(rows) / 2, (
            f"HERO best in only {hero_wins}/{len(rows)} rows — reproduction shape lost"
        )
