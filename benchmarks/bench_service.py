"""Fleet service benchmark: snapshot-read latency and restart latency.

Two numbers bound how the service behaves operationally:

* **Snapshot latency** — how long `queue-status` takes to assemble its
  document over a populated queue plus live heartbeat files.  The
  build is lock-free by construction, so this should stay flat while
  workers hammer the journal; it bounds how aggressively a dashboard
  can poll.
* **Restart latency** — wall-clock from SIGKILLing a fleet worker to
  the supervisor having respawned its slot (fresh worker identity).
  Dominated by the supervisor's poll interval; it bounds how long a
  slot sits empty after a crash.

Standalone smoke mode (no pytest-benchmark needed — used by CI)::

    PYTHONPATH=src python benchmarks/bench_service.py --tasks 64 \
        --kills 3 --json results/service.json
"""

import argparse
import json
import os
import shutil
import signal
import statistics
import tempfile
import time

from repro.experiments import (
    RunRecord,
    TaskQueue,
    expand_grid,
    make_config,
)
from repro.service import FleetSupervisor, Heartbeat, build_status
from repro.tensor import dtype_name


def smoke_grid(n):
    base = make_config(
        "ResNet20-fast", "cifar10_like", "sgd", profile="smoke", epochs=1
    )
    base = base.with_overrides(dtype=dtype_name(None))
    return expand_grid(base, seed=list(range(n)))


def bench_snapshot_latency(tasks, reps, workers=4):
    """Seconds per ``build_status`` over a half-drained queue."""
    tmp = tempfile.mkdtemp(prefix="bench-service-")
    try:
        configs = smoke_grid(tasks)
        queue = TaskQueue.create(tmp, "bench")
        queue.enqueue(configs)
        # resolve half the tasks so throughput/ETA estimation runs too
        for config in configs[: tasks // 2]:
            entry = queue.claim("bench-worker")
            record = RunRecord(
                key=entry["key"], config=config, status="ok", seconds=0.01
            )
            queue.resolve(entry["key"], "bench-worker", record)
        beats = [Heartbeat(tmp, f"bench-{i}@host") for i in range(workers)]
        for beat in beats:
            beat.beat(state="running", force=True)
        latencies = []
        for _ in range(reps):
            start = time.perf_counter()
            status = build_status(tmp)
            latencies.append(time.perf_counter() - start)
        assert status["totals"]["tasks"] == tasks
        assert len(status["workers"]) == workers
        for beat in beats:
            beat.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "tasks": tasks,
        "heartbeats": workers,
        "reps": reps,
        "mean_s": statistics.mean(latencies),
        "p50_s": statistics.median(latencies),
        "max_s": max(latencies),
    }


def bench_restart_latency(kills, poll=0.05):
    """Seconds from SIGKILLing a worker to its slot being respawned."""
    tmp = tempfile.mkdtemp(prefix="bench-service-")
    supervisor = FleetSupervisor(
        tmp,
        workers=1,
        poll=poll,
        worker_poll=0.05,
        heartbeat_interval=0.5,
        mp_context="fork",
    )
    latencies = []
    try:
        supervisor.start()
        for _ in range(kills):
            slot = supervisor.slots[0]
            os.kill(slot["proc"].pid, signal.SIGKILL)
            start = time.perf_counter()
            while True:
                if supervisor.monitor_once()["restarted"]:
                    break
                time.sleep(poll)
            latencies.append(time.perf_counter() - start)
    finally:
        supervisor.stop()
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "kills": kills,
        "poll_s": poll,
        "mean_s": statistics.mean(latencies),
        "max_s": max(latencies),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tasks", type=int, default=64, help="queue size")
    parser.add_argument("--reps", type=int, default=50, help="snapshot reads")
    parser.add_argument("--kills", type=int, default=3, help="SIGKILL rounds")
    parser.add_argument("--json", help="dump raw timings to this path")
    args = parser.parse_args(argv)

    snapshot = bench_snapshot_latency(args.tasks, args.reps)
    print(
        f"queue-status over {snapshot['tasks']} tasks "
        f"({snapshot['reps']} reads): mean {snapshot['mean_s'] * 1e3:.1f}ms, "
        f"p50 {snapshot['p50_s'] * 1e3:.1f}ms, max {snapshot['max_s'] * 1e3:.1f}ms"
    )
    restart = bench_restart_latency(args.kills)
    print(
        f"worker restart ({restart['kills']} SIGKILLs, poll {restart['poll_s']}s): "
        f"mean {restart['mean_s'] * 1e3:.0f}ms, max {restart['max_s'] * 1e3:.0f}ms"
    )
    payload = {"snapshot": snapshot, "restart": restart}
    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"raw timings -> {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
