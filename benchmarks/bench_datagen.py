"""Dataset-generation pipeline benchmark: loop vs vectorized vs sharded.

The seed generator built every image in a per-sample Python loop; the
pipeline (``repro.data.pipeline``) vectorizes the sampler, shards large
datasets across processes, and memoizes whole datasets under an on-disk
cache that sweep workers memory-map.  This bench quantifies each stage
on the default profile:

* ``loop`` — the seed per-image sampler (kept as the parity reference).
* ``vectorized`` — the batched sampler, bit-identical stream to the loop.
* ``sharded`` — the v2 sharded generator (engine-dtype native, per-shard
  spawned streams), serial and with a worker pool.
* ``cache_store`` / ``cache_load`` — cold publish and warm memory-map of
  the dataset cache (a warm sweep performs zero generation work).
* ``rss`` — the **peak-RSS axis**: cold cache writes measured in fresh
  subprocesses, eager (whole dataset in RAM, then serialized) vs
  streamed (shards written straight into the staged memmap entry,
  pages evicted per shard).  The acceptance number is
  ``rss.streamed.shard_ratio`` — streamed peak growth in units of one
  shard, which must stay near 1 (< ~1.5) however large the dataset is,
  while the eager ratio grows with the dataset.  See
  ``docs/memory-model.md``.

Standalone smoke mode (no pytest-benchmark needed — used by CI)::

    PYTHONPATH=src python benchmarks/bench_datagen.py --train-size 50000 \
        --json results/datagen.json
"""

import argparse
import gc
import json
import os
import shutil
import tempfile
import time
from multiprocessing import get_context

import numpy as np

from repro.data import generate_dataset, generate_synthetic, load_or_generate, resolve_spec
from repro.data.synthetic import _class_prototypes, _sample_images, _sample_images_loop, _split_labels

PROFILE = "cifar10_like"


def _setup(train_size):
    spec = resolve_spec(PROFILE, train_size=train_size)
    prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
    labels = _split_labels(spec, spec.train_size, np.random.default_rng(spec.seed + 1))
    return spec, prototypes, labels


def generate_dataset_loop(spec):
    """Full dataset generation exactly as the seed code did it.

    Prototypes plus both splits drawn with the per-image loop sampler
    on the legacy streams — the like-for-like baseline for every
    pipeline variant below (same work, same outputs as the v1 path).
    """
    prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
    splits = []
    for offset, total in ((1, spec.train_size), (2, spec.test_size)):
        rng = np.random.default_rng(spec.seed + offset)
        labels = _split_labels(spec, total, rng)
        splits.append((_sample_images_loop(spec, prototypes, labels, rng), labels))
    return splits


# ----------------------------------------------------------------------
# Peak-RSS axis (streamed vs eager cold cache writes)
# ----------------------------------------------------------------------
def _proc_status_kb(field):
    """A ``VmHWM``/``VmRSS``-style field from ``/proc/self/status`` (KiB)."""
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith(field + ":"):
                return int(line.split()[1])
    raise KeyError(field)


def _reset_peak_rss():
    """Reset this process's RSS high-water mark (Linux ``clear_refs``).

    Needed because the kernel can carry the parent's high-water mark
    across fork+exec, which would swamp the probe's own peak; after the
    reset, ``VmHWM`` tracks only what the probe itself touches.
    """
    with open("/proc/self/clear_refs", "w") as fh:
        fh.write("5")


def _rss_probe(mode, train_size, shard_size, cache_dir, conn):
    """Subprocess entry point: one cold cache write, peak RSS reported.

    Runs in its own interpreter with the peak-RSS counter reset after
    imports, so the reported delta isolates the writer's working set
    from both the interpreter+numpy baseline and anything inherited
    from the bench parent.
    """
    spec = resolve_spec(PROFILE, train_size=train_size)
    _reset_peak_rss()
    before = _proc_status_kb("VmRSS")
    load_or_generate(
        spec,
        cache_dir=cache_dir,
        workers=1,
        shard_size=shard_size,
        stream=(mode == "streamed"),
    )
    peak = _proc_status_kb("VmHWM")
    conn.send({"before_kb": before, "peak_kb": peak})
    conn.close()


def run_rss_axis(shards=4, shard_size=65_536, out=print):
    """Measure cold-write peak RSS, eager vs streamed; returns a dict.

    Generates a ``shards``-shard training split (``shards * shard_size``
    samples) twice into throwaway caches, each write in its own spawned
    subprocess.  Reported per mode: absolute peak, the delta over the
    post-import baseline, and that delta in units of one shard
    (``shard_ratio``) — the streamed writer's acceptance bound is
    staying below ~1.5 shards regardless of dataset size.
    """
    from repro.data.streaming import shard_nbytes

    spec = resolve_spec(PROFILE, train_size=shards * shard_size)
    shard_bytes = shard_nbytes(spec, shard_size)
    dataset_bytes = shard_bytes * shards
    results = {
        "train_size": spec.train_size,
        "shards": shards,
        "shard_size": shard_size,
        "shard_mb": shard_bytes / 2**20,
        "dataset_mb": dataset_bytes / 2**20,
    }
    ctx = get_context("spawn")
    for mode in ("eager", "streamed"):
        cache_dir = tempfile.mkdtemp(prefix=f"bench-datagen-rss-{mode}.")
        try:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_rss_probe,
                args=(mode, spec.train_size, shard_size, cache_dir, child_conn),
            )
            proc.start()
            child_conn.close()
            try:
                payload = parent_conn.recv()
            except EOFError:
                proc.join()
                raise RuntimeError(
                    f"rss probe subprocess ({mode}) died with exit code "
                    f"{proc.exitcode} before reporting"
                ) from None
            proc.join()
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
        # /proc/self/status values are KiB; the axis targets Linux (CI).
        delta = max(0, payload["peak_kb"] - payload["before_kb"]) * 1024
        results[mode] = {
            "peak_kb": payload["peak_kb"],
            "delta_mb": delta / 2**20,
            "shard_ratio": delta / shard_bytes,
        }
        out(
            f"rss {mode:9s} write:  {delta / 2**20:8.1f} MB over baseline "
            f"({results[mode]['shard_ratio']:.2f} shards of {shard_bytes / 2**20:.0f} MB; "
            f"dataset {dataset_bytes / 2**20:.0f} MB)"
        )
    ratio = results["streamed"]["shard_ratio"]
    if ratio > 1.5:
        out(f"WARNING: streamed peak RSS is {ratio:.2f} shards (expected < ~1.5)")
    return results


# The pytest-benchmark datagen axis lives in benchmarks/bench_engine.py;
# this module is the standalone smoke tool CI runs.
def _best_of(fn, rounds=3, warmup=1):
    """Minimum wall-clock of ``rounds`` runs (after ``warmup`` unmeasured ones).

    Dataset generation is deterministic, so the minimum is the right
    statistic: every run does identical work and anything above the
    minimum is scheduler/cache interference.
    """
    result = None
    for _ in range(warmup):
        result = fn()
    times = []
    for _ in range(rounds):
        gc.collect()
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return min(times), result


def run_smoke(
    train_size=50_000,
    workers=None,
    rounds=3,
    rss=True,
    rss_shards=4,
    rss_shard_size=65_536,
    out=print,
):
    """Time every pipeline stage (best of ``rounds``); returns a JSON dict.

    ``speedups`` are ratios of the seed loop's sampling time to each
    pipeline variant's time for the same work (the acceptance number is
    ``speedups["sharded"]``); cache timings are absolute seconds.  The
    peak-RSS axis (``rss`` key, see :func:`run_rss_axis`) compares the
    eager and streamed cold-write working sets.
    """
    workers = workers or (os.cpu_count() or 1)
    spec, prototypes, labels = _setup(train_size)
    results = {
        "profile": PROFILE,
        "train_size": spec.train_size,
        "workers": workers,
        "rounds": rounds,
    }

    t_shard, _ = _best_of(lambda: generate_dataset(spec, workers=1), rounds)
    t_pool = None
    if workers > 1:
        t_pool, _ = _best_of(lambda: generate_dataset(spec, workers=workers), rounds)

    # Sampler-level parity check (cheap: one small draw, exact equality).
    small = labels[:2048]
    reference = _sample_images_loop(spec, prototypes, small, np.random.default_rng(1))
    vectorized = _sample_images(spec, prototypes, small, np.random.default_rng(1))
    assert np.array_equal(reference, vectorized), "vectorized sampler lost stream parity"
    del reference, vectorized

    # Every timed variant does the same full-dataset work (prototypes,
    # label shuffles, both splits) and gets the same warmup treatment,
    # so the reported ratios compare like with like.
    t_vec, _ = _best_of(lambda: generate_synthetic(spec), rounds)
    t_loop, _ = _best_of(lambda: generate_dataset_loop(spec), rounds)

    out(f"seed loop:            {t_loop:8.3f}s  ({spec.train_size}+{spec.test_size} samples)")
    out(f"vectorized (parity):  {t_vec:8.3f}s  -> {t_loop / t_vec:.1f}x")
    out(f"sharded, serial:      {t_shard:8.3f}s  -> {t_loop / t_shard:.1f}x")
    if t_pool is not None:
        out(f"sharded, {workers} workers:  {t_pool:8.3f}s  -> {t_loop / t_pool:.1f}x")

    cache_dir = tempfile.mkdtemp(prefix="bench-datagen-cache.")
    try:
        start = time.perf_counter()
        load_or_generate(spec, cache_dir=cache_dir, workers=workers)
        t_store = time.perf_counter() - start
        start = time.perf_counter()
        load_or_generate(spec, cache_dir=cache_dir, workers=workers)
        t_load = time.perf_counter() - start
        out(f"cache cold store:     {t_store:8.3f}s")
        out(f"cache warm mmap load: {t_load:8.3f}s  (zero generation work)")
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    best_sharded = min(t_shard, t_pool) if t_pool is not None else t_shard
    results["runs"] = {
        "loop_seconds": t_loop,
        "vectorized_seconds": t_vec,
        "sharded_serial_seconds": t_shard,
        "sharded_pool_seconds": t_pool,
        "cache_store_seconds": t_store,
        "cache_load_seconds": t_load,
    }
    results["speedups"] = {
        "vectorized": t_loop / t_vec,
        "sharded": t_loop / best_sharded,
    }
    if rss:
        try:
            results["rss"] = run_rss_axis(
                shards=rss_shards, shard_size=rss_shard_size, out=out
            )
        except Exception as exc:  # non-Linux host, /proc unavailable, ...
            out(f"rss axis skipped: {type(exc).__name__}: {exc}")
            results["rss"] = {"error": f"{type(exc).__name__}: {exc}"}
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--train-size", type=int, default=50_000, help="samples to generate (default: 50k)"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="pool size for the sharded pass"
    )
    parser.add_argument(
        "--no-rss",
        action="store_true",
        help="skip the peak-RSS axis (streamed vs eager cold cache writes)",
    )
    parser.add_argument(
        "--rss-shards",
        type=int,
        default=4,
        help="shards in the RSS axis's training split (default: 4)",
    )
    parser.add_argument(
        "--rss-shard-size",
        type=int,
        default=65_536,
        help="samples per shard for the RSS axis (default: 65536, ~48 MB)",
    )
    parser.add_argument("--json", default=None, help="write timings to this JSON path")
    args = parser.parse_args(argv)
    results = run_smoke(
        train_size=args.train_size,
        workers=args.workers,
        rss=not args.no_rss,
        rss_shards=args.rss_shards,
        rss_shard_size=args.rss_shard_size,
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"timings -> {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
