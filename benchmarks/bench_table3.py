"""Table 3 bench: HERO vs first-order-only (SAM) vs SGD under PTQ.

Paper claims: HERO adds ~1% full-precision accuracy over first-order
only, and its 4-bit accuracy drop is the smallest — the Hessian term
is necessary.
"""

import repro.experiments as ex


def test_table3(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_table3(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_table3(result)
    violations = ex.check_table3(result)
    if violations:
        text += "\n\nOrdering deviations vs paper:\n" + "\n".join(
            f"  - {v}" for v in violations
        )
    else:
        text += "\n\nPaper ordering reproduced (HERO > first-order > SGD)."
    emit("table3", text)
    ex.save_json(result, f"{results_dir}/table3.json")

    by_method = {row["method"]: row for row in result["rows"]}
    for row in result["rows"]:
        for key in ("full", "q4", "q6", "q8"):
            assert 0.0 <= row[key] <= 1.0
    # Core ablation shape: HERO's 4-bit result beats plain SGD's.
    if profile != "smoke":
        assert by_method["hero"]["q4"] >= by_method["sgd"]["q4"] - 0.02
