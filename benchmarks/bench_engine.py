"""Microbenchmarks of the autograd substrate.

Not a paper artifact, but the substrate's cost model is what every
experiment above stands on: forward, backward, and double-backward
passes of the convolutional stack, the PTQ sweep primitives, and the
dataset-generation pipeline that feeds them (see
``benchmarks/bench_datagen.py`` for the full datagen axis).

Besides the pytest-benchmark timings, a standalone smoke mode records a
tracemalloc allocation profile per engine pass (transient peak bytes and
net live blocks), with and without the opt-in buffer arena — the
machine-independent axis CI archives alongside wall-clock::

    PYTHONPATH=src python benchmarks/bench_engine.py --json results/engine_alloc.json
"""

import argparse
import json
import tracemalloc

import numpy as np
import pytest

from repro import nn
from repro.data import generate_dataset, resolve_spec
from repro.data.synthetic import _class_prototypes, _sample_images, _sample_images_loop, _split_labels
from repro.models import create_model
from repro.quant import QuantScheme, quantize_array
from repro.tensor import Tensor, arena, arena_step


@pytest.fixture(scope="module")
def conv_setup():
    rng = np.random.default_rng(0)
    model = create_model("resnet8", num_classes=10, scale=1.0, seed=0)
    x = rng.standard_normal((32, 3, 8, 8))
    y = rng.integers(0, 10, 32)
    loss_fn = nn.CrossEntropyLoss()
    # Warm the im2col index cache.
    loss_fn(model(Tensor(x)), y)
    return model, loss_fn, x, y


def test_forward_pass(benchmark, conv_setup):
    model, loss_fn, x, y = conv_setup

    def forward():
        return float(loss_fn(model(Tensor(x)), y).data)

    benchmark.pedantic(forward, rounds=10, iterations=1, warmup_rounds=2)


def test_forward_backward(benchmark, conv_setup):
    model, loss_fn, x, y = conv_setup

    def forward_backward():
        model.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward()
        return float(loss.data)

    benchmark.pedantic(forward_backward, rounds=10, iterations=1, warmup_rounds=2)


def test_double_backward(benchmark, conv_setup):
    model, loss_fn, x, y = conv_setup
    params = list(model.parameters())

    def double_backward():
        model.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward(create_graph=True)
        grads = [p.grad for p in params if p.grad is not None]
        model.zero_grad()
        penalty = None
        for g in grads:
            term = (g * g).sum()
            penalty = term if penalty is None else penalty + term
        penalty.backward()
        return float(penalty.data)

    benchmark.pedantic(double_backward, rounds=5, iterations=1, warmup_rounds=1)


def test_quantize_large_tensor(benchmark):
    rng = np.random.default_rng(0)
    w = rng.standard_normal((256, 128, 3, 3))
    scheme = QuantScheme(4)
    benchmark.pedantic(
        lambda: quantize_array(w, scheme), rounds=10, iterations=1, warmup_rounds=1
    )


# ----------------------------------------------------------------------
# Dataset generation (the bench_datagen axis at engine-bench scale)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def datagen_setup():
    spec = resolve_spec("cifar10_like", train_size=8192)
    prototypes = _class_prototypes(spec, np.random.default_rng(spec.seed))
    labels = _split_labels(spec, spec.train_size, np.random.default_rng(spec.seed + 1))
    return spec, prototypes, labels


@pytest.mark.parametrize("sampler", ["loop", "vectorized"])
def test_datagen_sampler(benchmark, datagen_setup, sampler):
    spec, prototypes, labels = datagen_setup
    fn = _sample_images_loop if sampler == "loop" else _sample_images

    def draw():
        return fn(spec, prototypes, labels, np.random.default_rng(spec.seed + 1))

    benchmark.pedantic(draw, rounds=5, iterations=1, warmup_rounds=1)


def test_datagen_sharded(benchmark):
    spec = resolve_spec("cifar10_like", train_size=50_000)
    benchmark.pedantic(
        lambda: generate_dataset(spec), rounds=3, iterations=1, warmup_rounds=1
    )


# ----------------------------------------------------------------------
# Allocation profile (standalone smoke mode — no pytest-benchmark)
# ----------------------------------------------------------------------
def _engine_passes():
    """Named closures over one model: the three engine pass shapes."""
    rng = np.random.default_rng(0)
    model = create_model("resnet8", num_classes=10, scale=1.0, seed=0)
    x = rng.standard_normal((32, 3, 8, 8)).astype(np.float32)
    y = rng.integers(0, 10, 32)
    loss_fn = nn.CrossEntropyLoss()
    params = list(model.parameters())

    def forward():
        arena_step()
        return float(loss_fn(model(Tensor(x)), y).data)

    def forward_backward():
        arena_step()
        model.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward()
        return float(loss.data)

    def double_backward():
        arena_step()
        model.zero_grad()
        loss = loss_fn(model(Tensor(x)), y)
        loss.backward(create_graph=True)
        grads = [p.grad for p in params if p.grad is not None]
        model.zero_grad()
        penalty = None
        for g in grads:
            term = (g * g).sum()
            penalty = term if penalty is None else penalty + term
        penalty.backward()
        return float(penalty.data)

    return [
        ("forward", forward),
        ("forward_backward", forward_backward),
        ("double_backward", double_backward),
    ]


def _alloc_profile(fn):
    """(peak_bytes, net_blocks) of one warmed call to ``fn``."""
    tracemalloc.start()
    try:
        fn()  # warm-up: index caches, arena slots
        before = tracemalloc.take_snapshot()
        tracemalloc.reset_peak()
        current0, _ = tracemalloc.get_traced_memory()
        fn()
        _, peak = tracemalloc.get_traced_memory()
        after = tracemalloc.take_snapshot()
        net_blocks = sum(
            stat.count_diff for stat in after.compare_to(before, "filename")
        )
        return int(peak - current0), int(net_blocks)
    finally:
        tracemalloc.stop()


def run_alloc_smoke():
    """Allocation profile of each engine pass, arena off and on."""
    results = {"runs": []}
    for use_arena in (False, True):
        passes = _engine_passes()
        ctx = arena() if use_arena else None
        if ctx is not None:
            ctx.__enter__()
        try:
            for name, fn in passes:
                peak, net_blocks = _alloc_profile(fn)
                results["runs"].append(
                    {
                        "pass": name,
                        "arena": use_arena,
                        "alloc_peak_bytes": peak,
                        "alloc_net_blocks": net_blocks,
                    }
                )
                print(
                    f"{name:>20} arena={use_arena!s:>5}: "
                    f"peak {peak / 1e6:7.1f} MB, net {net_blocks:+d} blocks"
                )
        finally:
            if ctx is not None:
                ctx.__exit__(None, None, None)
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="tracemalloc allocation profile of the engine passes"
    )
    parser.add_argument("--json", default=None, help="write the profile to this path")
    args = parser.parse_args(argv)
    results = run_alloc_smoke()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"profile -> {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
