"""Sec. 2.2 motivation bench: QAT vs HERO when precision changes on the fly."""

import repro.experiments as ex


def test_qat_motivation(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_qat_motivation(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_qat_motivation(result)
    violations = ex.check_qat_motivation(result)
    if violations:
        text += "\n\nDeviations:\n" + "\n".join(f"  - {v}" for v in violations)
    else:
        text += "\n\nPaper motivation reproduced."
    emit("qat_motivation", text)
    ex.save_json(result, f"{results_dir}/qat_motivation.json")

    for curve in result["curves"].values():
        assert len(curve["accuracy"]) == len(result["bits"])
        assert all(0.0 <= a <= 1.0 for a in curve["accuracy"])
    if profile != "smoke":
        assert not violations, violations
