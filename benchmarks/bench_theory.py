"""Theorem 3 verification bench (Sec. 5.4 "theoretical insight").

Computes the Eq. 6/7 perturbation lower bounds for a HERO-trained and
an SGD-trained model.  Paper theory says HERO's smaller
``lambda_max(H)`` yields *larger* admissible perturbations — the
mechanism behind both its generalization and quantization results —
and Eq. 12 says GRAD-L1's bound stays small when curvature is high.
"""

import numpy as np

from repro.experiments import load_experiment_data, make_config, run_training
from repro.hessian import empirical_loss_increase, theorem3_bounds
from repro.nn import CrossEntropyLoss


def test_theorem3_bounds(benchmark, profile, results_dir, emit):
    def run():
        out = {}
        for method in ("hero", "sgd"):
            config = make_config("ResNet20-fast", "cifar10_like", method, profile=profile)
            result = run_training(config)
            train, _test, _spec = load_experiment_data(config)
            # Full-training-set Hessian, like the paper's Sec. 5.4
            # measurements: mini-batch lambda_max estimates are far too
            # noisy to compare methods.
            x, y = train[np.arange(len(train))]
            bounds = theorem3_bounds(
                result.model, CrossEntropyLoss(), x, y, c=0.1, power_iters=25
            )
            bounds["empirical_increase_at_l2_bound"] = empirical_loss_increase(
                result.model, CrossEntropyLoss(), x, y,
                radius=min(bounds["l2_bound"], 1e3), norm="l2", samples=4,
            )
            out[method] = bounds
        return out

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["Theorem 3 verification: perturbation lower bounds (c = 0.1)"]
    keys = (
        "lambda_max",
        "grad_norm",
        "grad_l1",
        "l2_bound",
        "linf_bound",
        "gradl1_limit",
        "empirical_increase_at_l2_bound",
    )
    lines.append(f"{'quantity':>34s} {'sgd':>12s} {'hero':>12s}")
    for key in keys:
        lines.append(
            f"{key:>34s} {result['sgd'][key]:>12.4g} {result['hero'][key]:>12.4g}"
        )
    verdict = (
        "HERO's lambda_max is smaller and its perturbation bounds larger — "
        "Theorem 3's mechanism reproduced."
        if result["hero"]["lambda_max"] <= result["sgd"]["lambda_max"]
        and result["hero"]["l2_bound"] >= result["sgd"]["l2_bound"]
        else "Deviation: HERO's curvature/bound ordering not reproduced at this profile."
    )
    lines.append("")
    lines.append(verdict)
    emit("theory_theorem3", "\n".join(lines))

    for method in ("hero", "sgd"):
        assert result[method]["lambda_max"] >= 0
        assert result[method]["l2_bound"] > 0
        assert result[method]["linf_bound"] > 0
    if profile != "smoke":
        # Core theoretical shape: flatter HERO curvature.
        assert result["hero"]["lambda_max"] <= result["sgd"]["lambda_max"] * 1.2
