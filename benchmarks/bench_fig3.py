"""Figure 3 bench: loss contours around HERO's vs SGD's optimum.

Paper claim: under the same plot scale, HERO's surface is smoother with
a larger region inside the +0.1-loss contour.
"""

import repro.experiments as ex


def test_fig3(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_fig3(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_fig3(result)
    violations = ex.check_fig3(result)
    if violations:
        text += "\n\nDeviations vs paper:\n" + "\n".join(f"  - {v}" for v in violations)
    else:
        text += "\n\nPaper shape reproduced: HERO's flat region is the larger one."
    emit("fig3", text)
    ex.save_json(
        {
            method: {
                "flat_area": entry["flat_area"],
                "max_increase": entry["max_increase"],
                "center_loss": entry["center_loss"],
                "loss_grid": entry["surface"]["loss"],
            }
            for method, entry in result["surfaces"].items()
        },
        f"{results_dir}/fig3.json",
    )

    hero = result["surfaces"]["hero"]
    sgd = result["surfaces"]["sgd"]
    assert 0.0 <= hero["flat_area"] <= 1.0
    assert 0.0 <= sgd["flat_area"] <= 1.0
    # Core shape: HERO at least matches SGD's flat area.
    if profile != "smoke":
        assert hero["flat_area"] >= sgd["flat_area"] - 0.05
