"""Per-step training cost of the four methods, across engine dtypes.

The paper argues HERO's Hessian regularization needs "only one
additional backpropagation" on top of the SAM-style perturbed pass.
This bench measures the realized per-batch cost: SGD is one
forward/backward, first-order two, GRAD-L1 one plus a double-backward,
HERO two plus a double-backward — so HERO should land within a small
constant factor (~3-5x) of SGD, not asymptotically worse.

The dtype axis demonstrates the precision policy's payoff: the same
training step under the float32 policy versus float64.  The engine is
memory-bandwidth bound at this scale, so float32 should be measurably
faster on every method.

Two engine axes ride along (float32 only):

* ``fused`` — the flat-arena optimizer path versus the per-parameter
  reference loop (``repro.optim``, bit-identical by construction);
* ``arena`` — the opt-in step-scoped buffer arena
  (``repro.tensor.arena``, bit-identical, off by default).

Each cell also records a tracemalloc allocation profile
(``alloc_peak_bytes`` — transient high-water mark of one step;
``alloc_net_blocks`` — net new live blocks) so CI can catch allocation
regressions, which are machine-independent unlike wall-clock.

Standalone smoke mode (no pytest-benchmark needed — used by CI)::

    PYTHONPATH=src python benchmarks/bench_step_cost.py --steps 3 \
        --json results/step_cost.json

Regression gate against the checked-in baseline (fails the process when
steps/sec drops more than 20% or allocations rise more than 10% on any
cell)::

    PYTHONPATH=src python benchmarks/bench_step_cost.py --steps 3 \
        --check-baseline benchmarks/baseline_step_cost.json

Regenerate the baseline after an intentional perf change (one line)::

    PYTHONPATH=src python benchmarks/bench_step_cost.py --steps 5 --update-baseline
"""

import argparse
import json
import os
import time
import tracemalloc

import numpy as np

from repro import nn, optim
from repro.core import make_trainer
from repro.data import make_dataset
from repro.messages import parse as parse_message
from repro.models import create_model
from repro.tensor import arena, dtype_context

METHOD_KWARGS = {
    "sgd": {},
    "first_order": {"h": 0.01},
    "grad_l1": {"lambda_l1": 0.002},
    "hero": {"h": 0.01, "gamma": 0.05},
}

DTYPES = ("float32", "float64")

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "baseline_step_cost.json")

# Gate thresholds: wall-clock gets 20% (runner variance), allocation
# metrics are deterministic for a fixed graph so they get 10%.
SPEED_DROP_TOLERANCE = 0.20
ALLOC_RISE_TOLERANCE = 0.10


def make_step(method, dtype="float32", fused=True, use_arena=False):
    """Build a closure running one training step under ``dtype``."""
    with dtype_context(dtype):
        train, _test, spec = make_dataset("cifar10_like", train_size=64, test_size=32)
        model = create_model("resnet8", num_classes=spec.num_classes, scale=1.0, seed=0)
        loss_fn = nn.CrossEntropyLoss()
        opt = optim.SGD(model.parameters(), lr=0.05, momentum=0.9, fused=fused)
        trainer = make_trainer(method, model, loss_fn, opt, **METHOD_KWARGS[method])
        x, y = train[np.arange(64)]

    arena_ctx = arena() if use_arena else None
    if arena_ctx is not None:
        arena_ctx.__enter__()

    def step():
        with dtype_context(dtype):
            trainer.training_step(x, y)
            opt.step()

    def close():
        if arena_ctx is not None:
            arena_ctx.__exit__(None, None, None)

    step.close = close
    return step


def measure_allocations(step):
    """tracemalloc profile of one (warmed) step.

    Returns ``(peak_bytes, net_blocks)``: the transient allocation
    high-water mark above the pre-step level, and the net number of
    blocks still live afterwards (buffer-arena steady state should pin
    the latter near zero for tensor data).
    """
    tracemalloc.start()
    try:
        step()  # absorb warm-up allocations (caches, arena slots)
        before = tracemalloc.take_snapshot()
        tracemalloc.reset_peak()
        current0, _ = tracemalloc.get_traced_memory()
        step()
        current1, peak = tracemalloc.get_traced_memory()
        after = tracemalloc.take_snapshot()
        net_blocks = sum(
            stat.count_diff for stat in after.compare_to(before, "filename")
        )
        del before, after
        return int(peak - current0), int(net_blocks), int(current1 - current0)
    finally:
        tracemalloc.stop()


def _cells(methods, dtypes):
    for method in methods:
        for dtype in dtypes:
            yield {"method": method, "dtype": dtype, "fused": True, "arena": False}
    # Engine axes, float32 only: reference (unfused) optimizer and the
    # buffer arena, on the cheapest and the paper's method.
    for method in ("sgd", "hero"):
        if method not in methods or "float32" not in dtypes:
            continue
        yield {"method": method, "dtype": "float32", "fused": False, "arena": False}
        yield {"method": method, "dtype": "float32", "fused": True, "arena": True}


def cell_key(cell):
    return "{method}/{dtype}/fused={fused}/arena={arena}".format(**cell)


def run_smoke(steps=3, methods=None, dtypes=DTYPES, allocations=True):
    """Time ``steps`` training steps per cell; returns a dict.

    ``runs`` holds uniform per-cell timings; the float64/float32 ratios
    live separately under ``speedups`` so timing consumers never mix
    units.
    """
    methods = list(methods or METHOD_KWARGS)
    results = {"steps": steps, "runs": [], "speedups": {}}
    per_method_dtype = {}
    for cell in _cells(methods, dtypes):
        step = make_step(
            cell["method"], cell["dtype"], fused=cell["fused"], use_arena=cell["arena"]
        )
        try:
            step()  # warm-up
            start = time.perf_counter()
            for _ in range(steps):
                step()
            seconds = (time.perf_counter() - start) / steps
            entry = dict(cell)
            entry["seconds_per_step"] = seconds
            entry["steps_per_sec"] = 1.0 / seconds
            if allocations:
                peak, net_blocks, net_bytes = measure_allocations(step)
                entry["alloc_peak_bytes"] = peak
                entry["alloc_net_blocks"] = net_blocks
                entry["alloc_net_bytes"] = net_bytes
        finally:
            step.close()
        results["runs"].append(entry)
        label = cell_key(cell)
        alloc_note = (
            f", peak {entry['alloc_peak_bytes'] / 1e6:7.1f} MB/step"
            if allocations
            else ""
        )
        print(f"{label:>40}: {seconds * 1e3:8.1f} ms/step{alloc_note}")
        if cell["fused"] and not cell["arena"]:
            per_method_dtype.setdefault(cell["method"], {})[cell["dtype"]] = seconds
    for method, per_dtype in per_method_dtype.items():
        if "float32" in per_dtype and "float64" in per_dtype:
            results["speedups"][method] = per_dtype["float64"] / per_dtype["float32"]
    return results


def check_baseline(results, baseline_path):
    """Compare a smoke run against the checked-in baseline.

    Returns a list of human-readable violation strings (empty = pass).
    A cell fails when steps/sec drops more than 20% or the transient
    allocation peak rises more than 10%.  The baseline passes through
    the message layer first, so a corrupted or foreign-format baseline
    is a typed schema error, not a silent no-op gate.
    """
    with open(baseline_path) as fh:
        baseline = parse_message("bench.step_cost", json.load(fh)).to_dict()
    base_cells = {cell_key(run): run for run in baseline["runs"]}
    violations = []
    for run in results["runs"]:
        key = cell_key(run)
        base = base_cells.get(key)
        if base is None:
            continue
        floor = base["steps_per_sec"] * (1.0 - SPEED_DROP_TOLERANCE)
        if run["steps_per_sec"] < floor:
            violations.append(
                f"{key}: {run['steps_per_sec']:.2f} steps/sec < "
                f"{floor:.2f} (baseline {base['steps_per_sec']:.2f} - "
                f"{SPEED_DROP_TOLERANCE:.0%})"
            )
        # Only peak bytes is gated: it is pinned by the computation graph
        # and stable across runs, while net live *blocks* also count
        # interpreter/GC churn and jitter run to run.
        metric = "alloc_peak_bytes"
        if metric in run and metric in base and base[metric] >= 0:
            ceiling = base[metric] * (1.0 + ALLOC_RISE_TOLERANCE)
            if run[metric] > max(ceiling, base[metric] + 4096):
                violations.append(
                    f"{key}: {metric} {run[metric]} > {ceiling:.0f} "
                    f"(baseline {base[metric]} + {ALLOC_RISE_TOLERANCE:.0%})"
                )
    return violations


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=3, help="timed steps per cell")
    parser.add_argument(
        "--methods",
        default=None,
        help=f"comma-separated subset of {sorted(METHOD_KWARGS)} (default: all)",
    )
    parser.add_argument("--json", default=None, help="write timings to this JSON path")
    parser.add_argument(
        "--no-allocations",
        action="store_true",
        help="skip the tracemalloc pass (it slows the measured steps)",
    )
    parser.add_argument(
        "--check-baseline",
        nargs="?",
        const=BASELINE_PATH,
        default=None,
        metavar="PATH",
        help="fail if steps/sec drops >20%% or allocations rise >10%% vs PATH "
        f"(default {BASELINE_PATH})",
    )
    parser.add_argument(
        "--update-baseline",
        nargs="?",
        const=BASELINE_PATH,
        default=None,
        metavar="PATH",
        help=f"write this run as the new baseline (default {BASELINE_PATH})",
    )
    args = parser.parse_args(argv)
    methods = args.methods.split(",") if args.methods else None
    results = run_smoke(
        steps=args.steps, methods=methods, allocations=not args.no_allocations
    )
    if args.json or args.update_baseline:
        # Serialize-at-write validation: what lands on disk (the CI
        # artifact, the checked-in baseline) is the canonical form.
        results = parse_message("bench.step_cost", results).to_dict()
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"timings -> {args.json}")
    if args.update_baseline:
        with open(args.update_baseline, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"baseline -> {args.update_baseline}")
    if args.check_baseline:
        violations = check_baseline(results, args.check_baseline)
        if violations:
            print("bench-step-gate FAILED:")
            for line in violations:
                print(f"  {line}")
            return 1
        print(f"bench-step-gate OK vs {args.check_baseline}")
    return 0


try:
    import pytest

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("method", list(METHOD_KWARGS))
    def test_training_step_cost(benchmark, method, dtype):
        step = make_step(method, dtype)
        step()  # warm up the im2col index caches
        benchmark.pedantic(step, rounds=5, iterations=1, warmup_rounds=1)

except ImportError:  # pragma: no cover - pytest always present in dev
    pass


if __name__ == "__main__":
    raise SystemExit(main())
