"""Per-step training cost of the four methods.

The paper argues HERO's Hessian regularization needs "only one
additional backpropagation" on top of the SAM-style perturbed pass.
This bench measures the realized per-batch cost: SGD is one
forward/backward, first-order two, GRAD-L1 one plus a double-backward,
HERO two plus a double-backward — so HERO should land within a small
constant factor (~3-5x) of SGD, not asymptotically worse.
"""

import numpy as np
import pytest

from repro import nn, optim
from repro.core import make_trainer
from repro.data import make_dataset
from repro.models import create_model

METHOD_KWARGS = {
    "sgd": {},
    "first_order": {"h": 0.01},
    "grad_l1": {"lambda_l1": 0.002},
    "hero": {"h": 0.01, "gamma": 0.05},
}


def make_step(method):
    train, _test, spec = make_dataset("cifar10_like", train_size=64, test_size=32)
    model = create_model("resnet8", num_classes=spec.num_classes, scale=1.0, seed=0)
    loss_fn = nn.CrossEntropyLoss()
    opt = optim.SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = make_trainer(method, model, loss_fn, opt, **METHOD_KWARGS[method])
    x, y = train[np.arange(64)]

    def step():
        trainer.training_step(x, y)
        opt.step()

    return step


@pytest.mark.parametrize("method", list(METHOD_KWARGS))
def test_training_step_cost(benchmark, method):
    step = make_step(method)
    step()  # warm up the im2col index caches
    benchmark.pedantic(step, rounds=5, iterations=1, warmup_rounds=1)
