"""Per-step training cost of the four methods, across engine dtypes.

The paper argues HERO's Hessian regularization needs "only one
additional backpropagation" on top of the SAM-style perturbed pass.
This bench measures the realized per-batch cost: SGD is one
forward/backward, first-order two, GRAD-L1 one plus a double-backward,
HERO two plus a double-backward — so HERO should land within a small
constant factor (~3-5x) of SGD, not asymptotically worse.

The dtype axis demonstrates the precision policy's payoff: the same
training step under the float32 policy versus float64.  The engine is
memory-bandwidth bound at this scale, so float32 should be measurably
faster on every method.

Standalone smoke mode (no pytest-benchmark needed — used by CI)::

    PYTHONPATH=src python benchmarks/bench_step_cost.py --steps 3 \
        --json results/step_cost.json
"""

import argparse
import json
import time

import numpy as np

from repro import nn, optim
from repro.core import make_trainer
from repro.data import make_dataset
from repro.models import create_model
from repro.tensor import dtype_context

METHOD_KWARGS = {
    "sgd": {},
    "first_order": {"h": 0.01},
    "grad_l1": {"lambda_l1": 0.002},
    "hero": {"h": 0.01, "gamma": 0.05},
}

DTYPES = ("float32", "float64")


def make_step(method, dtype="float32"):
    """Build a closure running one training step under ``dtype``."""
    with dtype_context(dtype):
        train, _test, spec = make_dataset("cifar10_like", train_size=64, test_size=32)
        model = create_model("resnet8", num_classes=spec.num_classes, scale=1.0, seed=0)
        loss_fn = nn.CrossEntropyLoss()
        opt = optim.SGD(model.parameters(), lr=0.05, momentum=0.9)
        trainer = make_trainer(method, model, loss_fn, opt, **METHOD_KWARGS[method])
        x, y = train[np.arange(64)]

    def step():
        with dtype_context(dtype):
            trainer.training_step(x, y)
            opt.step()

    return step


try:
    import pytest

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("method", list(METHOD_KWARGS))
    def test_training_step_cost(benchmark, method, dtype):
        step = make_step(method, dtype)
        step()  # warm up the im2col index caches
        benchmark.pedantic(step, rounds=5, iterations=1, warmup_rounds=1)

except ImportError:  # pragma: no cover - pytest always present in dev
    pass


def run_smoke(steps=3, methods=None, dtypes=DTYPES):
    """Time ``steps`` training steps per (method, dtype); returns a dict.

    ``runs`` holds uniform per-cell timings; the float64/float32 ratios
    live separately under ``speedups`` so timing consumers never mix
    units.
    """
    methods = list(methods or METHOD_KWARGS)
    results = {"steps": steps, "runs": [], "speedups": {}}
    for method in methods:
        per_dtype = {}
        for dtype in dtypes:
            step = make_step(method, dtype)
            step()  # warm-up
            start = time.perf_counter()
            for _ in range(steps):
                step()
            seconds = (time.perf_counter() - start) / steps
            per_dtype[dtype] = seconds
            results["runs"].append(
                {"method": method, "dtype": dtype, "seconds_per_step": seconds}
            )
        if "float32" in per_dtype and "float64" in per_dtype:
            speedup = per_dtype["float64"] / per_dtype["float32"]
            results["speedups"][method] = speedup
            print(
                f"{method:>12}: float32 {per_dtype['float32'] * 1e3:8.1f} ms/step, "
                f"float64 {per_dtype['float64'] * 1e3:8.1f} ms/step "
                f"-> {speedup:.2f}x"
            )
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=3, help="timed steps per cell")
    parser.add_argument(
        "--methods",
        default=None,
        help=f"comma-separated subset of {sorted(METHOD_KWARGS)} (default: all)",
    )
    parser.add_argument("--json", default=None, help="write timings to this JSON path")
    args = parser.parse_args(argv)
    methods = args.methods.split(",") if args.methods else None
    results = run_smoke(steps=args.steps, methods=methods)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(results, fh, indent=2)
        print(f"timings -> {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
