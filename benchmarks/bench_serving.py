"""Serving benchmark: open-loop load against published model artifacts.

Drives the micro-batched inference server with an **open-loop** Poisson
arrival process (submissions follow the schedule regardless of how the
server keeps up — the arrival pattern a public endpoint actually sees)
and reports, per artifact precision:

* **p50 / p99 latency** — submit-to-response wall clock per request;
* **throughput** — served requests over the span from first submission
  to last response;
* **bit_identical** — every served response compared byte-for-byte
  against an offline forward pass of the same model the artifact was
  published from (the serving layer's determinism contract: for the
  PTQ artifact that offline model is the
  ``quantize_weights_and_activations`` output itself).

Three artifacts are exercised: float32, uniform w8/a8 PTQ, and a
mixed-precision (8/4-bit alternating) weight assignment.

Standalone smoke mode (no pytest-benchmark needed — used by CI)::

    PYTHONPATH=src python benchmarks/bench_serving.py --requests 24 \
        --rate 300 --json results/serving.json
"""

import argparse
import json
import math
import os
import shutil
import tempfile
import threading
import time

import numpy as np

from repro import nn
from repro.models import create_model
from repro.quant import quantize_weights_and_activations
from repro.quant.sensitivity import apply_mixed_precision
from repro.serving import (
    InferenceServer,
    mixed_weight_quant,
    model_spec,
    publish_artifact,
    uniform_weight_quant,
)
from repro.tensor import Tensor, no_grad

MODEL = dict(name="resnet8", num_classes=10, in_channels=3, scale=0.5, image_size=8)


def build_artifacts(cache_dir, seed):
    """Publish float32 / PTQ / mixed artifacts; return (label, key, offline)."""
    rng = np.random.default_rng(seed)
    model = create_model(
        MODEL["name"],
        num_classes=MODEL["num_classes"],
        in_channels=MODEL["in_channels"],
        scale=MODEL["scale"],
        seed=seed,
        image_size=MODEL["image_size"],
    )
    model.eval()
    spec = model_spec(**MODEL)
    calibration = [
        (
            rng.standard_normal(
                (16, MODEL["in_channels"], MODEL["image_size"], MODEL["image_size"])
            ).astype(np.float32),
            None,
        )
    ]

    ptq = quantize_weights_and_activations(
        model, weight_bits=8, act_bits=8, batches=calibration
    )
    layer_names = [
        name
        for name, module in model.named_modules()
        if isinstance(module, (nn.Conv2d, nn.Linear))
    ]
    assignment = {
        name: (8 if index % 2 == 0 else 4) for index, name in enumerate(layer_names)
    }
    mixed, _report = apply_mixed_precision(model, assignment)
    mixed.eval()

    artifacts = [
        ("float32", publish_artifact(model, spec, cache_dir=cache_dir), model),
        (
            "ptq_w8a8",
            publish_artifact(
                ptq, spec, cache_dir=cache_dir, weight_quant=uniform_weight_quant(8)
            ),
            ptq,
        ),
        (
            "mixed_w8_4",
            publish_artifact(
                mixed,
                spec,
                cache_dir=cache_dir,
                weight_quant=mixed_weight_quant(assignment),
            ),
            mixed,
        ),
    ]
    return [(label, manifest.key, offline) for label, manifest, offline in artifacts]


def percentile(values, q):
    ordered = sorted(values)
    index = max(0, min(len(ordered) - 1, math.ceil(q / 100.0 * len(ordered)) - 1))
    return ordered[index]


def drive_open_loop(server, xs, rate, seed):
    """Submit ``xs`` on a Poisson schedule; collect per-request latency.

    A collector thread polls outstanding responses while submission is
    still in flight, so early responses are timestamped when they land,
    not when the driver gets around to waiting on them.
    """
    client = server.client()
    rng = np.random.default_rng(seed)
    schedule = np.cumsum(rng.exponential(1.0 / rate, size=len(xs)))
    submitted = []  # (request_id, submit_wall)
    latencies = {}
    responses = {}
    lock = threading.Lock()
    done = threading.Event()

    def collect():
        outstanding = {}
        ingested = 0
        while True:
            with lock:
                while ingested < len(submitted):
                    request_id, at = submitted[ingested]
                    ingested += 1
                    outstanding[request_id] = at
            finished = []
            for request_id, at in outstanding.items():
                response = client.store.try_response(request_id)
                if response is not None:
                    latencies[request_id] = time.perf_counter() - at
                    responses[request_id] = response
                    finished.append(request_id)
            for request_id in finished:
                del outstanding[request_id]
            if done.is_set() and not outstanding and len(latencies) == len(xs):
                return
            time.sleep(0.0005)

    collector = threading.Thread(target=collect)
    collector.start()
    start = time.perf_counter()
    order = []
    for index, x in enumerate(xs):
        now = time.perf_counter() - start
        if schedule[index] > now:
            time.sleep(schedule[index] - now)
        at = time.perf_counter()
        request_id = client.submit(x)
        order.append(request_id)
        with lock:
            submitted.append((request_id, at))
    done.set()
    collector.join(timeout=60.0)
    if len(latencies) != len(xs):
        raise TimeoutError(f"only {len(latencies)}/{len(xs)} requests served")
    span = max(
        at + latencies[request_id] for request_id, at in submitted
    ) - submitted[0][1]
    return (
        [latencies[request_id] for request_id in order],
        [responses[request_id] for request_id in order],
        span,
    )


def bench_artifact(label, key, offline, cache_dir, args):
    """One artifact's open-loop run; returns the report row."""
    xs = [
        np.random.default_rng(args.seed + 1000 + i)
        .standard_normal((1, MODEL["in_channels"], MODEL["image_size"], MODEL["image_size"]))
        .astype(np.float32)
        for i in range(args.requests)
    ]
    offline.eval()
    with no_grad():
        references = [offline(Tensor(x)).data for x in xs]
    server = InferenceServer(
        key,
        cache_dir=cache_dir,
        name=f"bench-{label}",
        workers=args.workers,
        max_batch=args.max_batch,
        max_delay=args.max_delay_ms / 1000.0,
    )
    with server:
        latencies, responses, span = drive_open_loop(server, xs, args.rate, args.seed)
    stats = server.write_stats()
    identical = all(
        np.array_equal(response, reference)
        for response, reference in zip(responses, references)
    )
    return {
        "artifact": label,
        "key": key,
        "requests": args.requests,
        "rate_per_s": args.rate,
        "p50_ms": percentile(latencies, 50) * 1e3,
        "p99_ms": percentile(latencies, 99) * 1e3,
        "throughput_per_s": args.requests / span if span > 0 else float("inf"),
        "batches": stats.batches_total,
        "mean_batch_fill": stats.served_total / stats.batches_total
        if stats.batches_total
        else 0.0,
        "bit_identical": identical,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=48, help="requests per artifact")
    parser.add_argument("--rate", type=float, default=400.0, help="arrival rate (req/s)")
    parser.add_argument("--workers", type=int, default=2, help="server worker threads")
    parser.add_argument("--max-batch", type=int, default=8, help="micro-batch ceiling")
    parser.add_argument(
        "--max-delay-ms", type=float, default=5.0, help="batcher latency budget"
    )
    parser.add_argument("--seed", type=int, default=0, help="load + weights seed")
    parser.add_argument("--json", help="dump raw results to this path")
    args = parser.parse_args(argv)

    tmp = tempfile.mkdtemp(prefix="bench-serving-")
    rows = []
    try:
        artifacts = build_artifacts(tmp, args.seed)
        for label, key, offline in artifacts:
            rows.append(bench_artifact(label, key, offline, tmp, args))
            row = rows[-1]
            check = "bit-identical" if row["bit_identical"] else "MISMATCH"
            print(
                f"{label:12s} p50 {row['p50_ms']:6.2f}ms  p99 {row['p99_ms']:6.2f}ms  "
                f"{row['throughput_per_s']:7.1f} req/s  "
                f"fill {row['mean_batch_fill']:.2f}  {check}"
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    payload = {
        "model": MODEL,
        "workers": args.workers,
        "max_batch": args.max_batch,
        "max_delay_ms": args.max_delay_ms,
        "results": rows,
    }
    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"raw results -> {args.json}")
    return 0 if all(row["bit_identical"] for row in rows) else 1


if __name__ == "__main__":
    raise SystemExit(main())
