"""Sweep scheduler benchmark: pool vs queue, and raw journal overhead.

Two questions, measured separately:

* **Journal overhead** — enqueue/claim/resolve throughput with no-op
  tasks.  Every queue transition is a locked read-modify-write of a
  JSON file, so this bounds how fine-grained queued tasks can be;
  training runs are seconds-to-hours, so thousands of ops/sec means
  the journal is invisible in practice.
* **End-to-end** — one smoke grid through the serial loop, the pool
  and the queue scheduler at the same worker count, plus a queue
  *resume* pass (everything served from the journal — the number that
  should be near zero).

Standalone smoke mode (no pytest-benchmark needed — used by CI)::

    PYTHONPATH=src python benchmarks/bench_scheduler.py --runs 4 \
        --workers 2 --json results/scheduler.json
"""

import argparse
import json
import os
import shutil
import tempfile
import time

from repro.experiments import (
    RunRecord,
    TaskQueue,
    expand_grid,
    make_config,
    run_sweep,
)
from repro.tensor import dtype_name


def smoke_grid(n):
    base = make_config(
        "ResNet20-fast", "cifar10_like", "sgd", profile="smoke", epochs=1
    )
    base = base.with_overrides(dtype=dtype_name(None))
    return expand_grid(base, seed=list(range(n)))


def bench_journal_ops(ops):
    """Ops/sec for the three journal transitions, no training attached."""
    configs = smoke_grid(ops)
    tmp = tempfile.mkdtemp(prefix="bench-queue-")
    try:
        queue = TaskQueue.create(tmp, "bench")
        start = time.perf_counter()
        queue.enqueue(configs)
        enqueue_s = time.perf_counter() - start

        start = time.perf_counter()
        claimed = []
        while True:
            entry = queue.claim("bench-worker")
            if entry is None:
                break
            claimed.append(entry)
        claim_s = time.perf_counter() - start

        start = time.perf_counter()
        for entry, config in zip(claimed, configs):
            record = RunRecord(
                key=entry["key"], config=config, status="ok", seconds=0.0
            )
            queue.resolve(entry["key"], "bench-worker", record)
        resolve_s = time.perf_counter() - start
        assert queue.drained()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "tasks": ops,
        "enqueue_per_s": ops / enqueue_s if enqueue_s else float("inf"),
        "claim_per_s": ops / claim_s if claim_s else float("inf"),
        "resolve_per_s": ops / resolve_s if resolve_s else float("inf"),
    }


def bench_end_to_end(runs, workers):
    """Wall-clock of the same grid through each backend (fresh caches)."""
    configs = smoke_grid(runs)
    results = {}
    tmp = tempfile.mkdtemp(prefix="bench-sched-")
    try:
        variants = [
            ("serial", dict(workers=1)),
            ("pool", dict(workers=workers)),
            ("queue", dict(workers=workers, scheduler="queue")),
        ]
        for name, kwargs in variants:
            cache = os.path.join(tmp, name)
            start = time.perf_counter()
            report = run_sweep(configs, cache_dir=cache, mp_context="fork", **kwargs)
            results[name] = time.perf_counter() - start
            assert report.n_errors == 0, f"{name} backend reported errors"
        # resume: the whole grid is served from the queue journal
        start = time.perf_counter()
        report = run_sweep(
            configs,
            workers=workers,
            cache_dir=os.path.join(tmp, "queue"),
            scheduler="queue",
        )
        results["queue_resume"] = time.perf_counter() - start
        assert report.resumed == len(configs)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return results


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=4, help="grid size (default: 4)")
    parser.add_argument("--workers", type=int, default=2, help="parallel workers")
    parser.add_argument("--ops", type=int, default=200, help="journal-op count")
    parser.add_argument("--json", help="dump raw timings to this path")
    args = parser.parse_args(argv)

    ops = bench_journal_ops(args.ops)
    print(
        f"journal ops ({ops['tasks']} tasks): "
        f"enqueue {ops['enqueue_per_s']:.0f}/s, claim {ops['claim_per_s']:.0f}/s, "
        f"resolve {ops['resolve_per_s']:.0f}/s"
    )
    e2e = bench_end_to_end(args.runs, args.workers)
    print(
        f"grid of {args.runs} ({args.workers} workers): "
        + ", ".join(f"{name} {seconds:.2f}s" for name, seconds in e2e.items())
    )
    payload = {"journal_ops": ops, "end_to_end": e2e,
               "runs": args.runs, "workers": args.workers}
    if args.json:
        os.makedirs(os.path.dirname(os.path.abspath(args.json)), exist_ok=True)
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"raw timings -> {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
