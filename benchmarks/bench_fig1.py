"""Figure 1 bench: PTQ accuracy vs precision, all seven panels.

Paper claims: HERO's curve dominates GRAD-L1 and SGD at every
precision, with the largest gaps at 3-4 bits; reuses the Table 1
training runs via the cache.
"""

import repro.experiments as ex


def test_fig1(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_fig1(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_fig1(result)
    violations = ex.check_fig1(result)
    if violations:
        text += "\n\nLow-bit dominance deviations vs paper:\n" + "\n".join(
            f"  - {v}" for v in violations
        )
    else:
        text += "\n\nPaper shape reproduced: HERO dominates at <=4 bits in every panel."
    emit("fig1", text)
    ex.save_json(result, f"{results_dir}/fig1.json")

    for panel_id, panel in result["panels"].items():
        for method, curve in panel["curves"].items():
            assert len(curve["accuracy"]) == len(result["bits"])
            assert all(0.0 <= a <= 1.0 for a in curve["accuracy"])
            # 8-bit should be near the full-precision score for every method
            assert abs(curve["accuracy"][-1] - curve["full_precision"]) < 0.2

    if profile == "smoke":
        return
    # Headline reproduction target: HERO wins at 4 bits in a majority
    # of panels (the paper shows it winning in all).
    idx4 = result["bits"].index(4)
    wins = sum(
        1
        for panel in result["panels"].values()
        if panel["curves"]["hero"]["accuracy"][idx4]
        >= max(
            panel["curves"]["grad_l1"]["accuracy"][idx4],
            panel["curves"]["sgd"]["accuracy"][idx4],
        )
    )
    assert wins >= len(result["panels"]) / 2
