"""Design-choice ablations (beyond the paper's Table 3).

Regenerates the grids DESIGN.md calls out: Eq. 15 layer-adaptive vs
global perturbation scaling, norm vs squared-norm penalty, h
sensitivity, and the paper's gamma grid search.
"""

import repro.experiments as ex


def test_perturbation_and_penalty_ablation(benchmark, profile, results_dir, emit):
    def run():
        return (
            ex.run_perturbation_ablation(profile=profile),
            ex.run_penalty_ablation(profile=profile),
        )

    perturbation, penalty = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ex.format_ablation(perturbation) + "\n\n" + ex.format_ablation(penalty)
    emit("ablation_design", text)
    for result in (perturbation, penalty):
        for row in result["rows"]:
            assert 0.0 <= row["test_acc"] <= 1.0


def test_h_and_gamma_grids(benchmark, profile, results_dir, emit):
    def run():
        return (
            ex.run_h_sensitivity(profile=profile),
            ex.run_gamma_grid(profile=profile),
        )

    h_sens, gamma_grid = benchmark.pedantic(run, rounds=1, iterations=1)
    text = ex.format_ablation(h_sens) + "\n\n" + ex.format_ablation(gamma_grid)
    emit("ablation_grids", text)
    assert len(h_sens["rows"]) == 3
    assert len(gamma_grid["rows"]) == 3
