"""Shared benchmark configuration.

Benchmarks regenerate the paper's tables and figures at the ``fast``
profile (override with ``REPRO_PROFILE=smoke`` for a quick pass or
``full`` for longer runs).  Training runs are memoized under
``.cache/runs`` so figure benches reuse table models; delete that
directory for a cold start.

Each artifact bench prints the reproduced table/figure to stdout (run
pytest with ``-s`` to see them live) and writes it to
``benchmarks/results/``.
"""

import os

import pytest

PROFILE = os.environ.get("REPRO_PROFILE", "fast")
RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def profile():
    return PROFILE


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Fixture: print an artifact and persist it under benchmarks/results/."""

    def _emit(name, text):
        banner = f"\n{'=' * 72}\n{text}\n{'=' * 72}"
        print(banner)
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w") as fh:
            fh.write(text + "\n")
        return path

    return _emit
