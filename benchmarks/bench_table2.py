"""Table 2 bench: test accuracy under 20-80% symmetric label noise.

Paper claim: HERO best at every ratio; SGD/GRAD-L1 collapse at 80%
while HERO still gives acceptable accuracy (the 5-30 point gaps).
"""

import repro.experiments as ex


def test_table2(benchmark, profile, results_dir, emit):
    result = benchmark.pedantic(
        lambda: ex.run_table2(profile=profile), rounds=1, iterations=1
    )
    text = ex.format_table2(result)
    violations = ex.check_table2(result)
    if violations:
        text += "\n\nOrdering deviations vs paper:\n" + "\n".join(
            f"  - {v}" for v in violations
        )
    else:
        text += "\n\nPaper ordering reproduced: HERO best at every noise ratio."
    emit("table2", text)
    ex.save_json(result, f"{results_dir}/table2.json")

    for model, rows in result["panels"].items():
        for row in rows:
            for method in ("hero", "grad_l1", "sgd"):
                assert 0.0 <= row[method] <= 1.0
        # HERO should win at the highest noise ratio (the paper's
        # headline 80% result) in each panel.
        if profile != "smoke":
            worst = rows[-1]
            assert worst["hero"] >= max(worst["grad_l1"], worst["sgd"]) - 0.05, (
                f"{model}: HERO not competitive at {worst['noise_ratio']:.0%} noise"
            )
